"""End-to-end serving-layer contracts (the ISSUE's acceptance criteria).

The load-bearing property: an estimate served through the long-lived
service — published graph, answer cache, shared max-budget fleets — is
**bit-identical** to what the batch harness
(:func:`repro.experiments.runner.run_trials_prefix`, the engine behind
the CLI tables) produces for the same query at the same user seed.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ExperimentError, GraphError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import run_trials_prefix
from repro.service import EstimationService
from repro.service.planner import EstimateQuery
from repro.utils.rng import derive_seed

BURN_IN = 5  # matches the conftest fixtures
USER_SEED = 7


def build_serving_graph(rng: int = 7):
    # Mirrors the conftest builder; a fresh, unfrozen copy per call so
    # swap/standalone tests can publish without touching the fixture.
    from repro.datasets.labeling import assign_binary_labels
    from repro.datasets.synthetic import powerlaw_cluster_osn

    graph = powerlaw_cluster_osn(250, 5, 0.3, rng=rng)
    assign_binary_labels(graph, 0.5, labels=(1, 2), rng=rng + 1)
    return graph


def _query(**overrides) -> dict:
    fields = dict(
        algorithm="NeighborSample-HH", t1=1, t2=2, budget=20,
        seed=USER_SEED, repetitions=6, burn_in=BURN_IN,
    )
    fields.update(overrides)
    return fields


class TestBitIdentityWithBatchHarness:
    @pytest.mark.parametrize("algorithm", ["NeighborSample-HH", "EX-RW"])
    def test_served_answer_matches_run_trials_prefix(
        self, serving_graph, shm_service, algorithm
    ):
        # Service path: published shm graph, micro-batch engine.
        answer = shm_service.estimate(_query(algorithm=algorithm, budget=30))

        # Batch path: the harness walks at the derived group seed (what
        # compare_algorithms passes down for the same user seed).
        suite = build_algorithm_suite(serving_graph, include_baselines=True)
        [outcome] = run_trials_prefix(
            serving_graph, 1, 2, suite[algorithm], algorithm,
            [30], 6, BURN_IN,
            seed=derive_seed(USER_SEED, algorithm, "prefix"),
        )
        assert answer.estimates == outcome.estimates
        assert answer.api_calls == outcome.api_calls
        assert answer.true_count == outcome.true_count

    def test_prefix_answers_match_standalone_budgets(self, shm_service):
        # One coalesced batch at mixed budgets vs fresh single-budget
        # fleets: prefix-reuse exactness through the whole service stack.
        budgets = [10, 25, 40]
        batch = shm_service.estimate_many(
            [_query(budget=budget) for budget in budgets]
        )
        fleets_after_batch = shm_service.fleets_built
        assert fleets_after_batch == 1  # one walk answered all three

        with EstimationService(
            build_serving_graph(), graph_store="ram", cache_size=0,
            default_burn_in=BURN_IN, name="standalone",
        ) as standalone:
            for answer, budget in zip(batch, budgets):
                single = standalone.estimate(_query(budget=budget))
                assert answer.estimates == single.estimates
                assert answer.api_calls == single.api_calls


class TestAnswerCache:
    def test_repeat_query_hits_the_cache(self, shm_service):
        first = shm_service.estimate(_query())
        second = shm_service.estimate(_query())
        assert first.cached is False
        assert second.cached is True
        assert second.estimates == first.estimates
        assert shm_service.stats()["cache"]["hit_rate"] > 0
        assert shm_service.fleets_built == 1  # the repeat did not walk

    def test_cache_disabled_walks_every_time(self, serving_graph):
        with EstimationService(
            serving_graph, graph_store="ram", cache_size=0,
            default_burn_in=BURN_IN, name="uncached",
        ) as service:
            service.estimate(_query())
            second = service.estimate(_query())
            assert second.cached is False
            assert service.fleets_built == 2

    def test_swap_graph_invalidates_cached_answers(self, serving_graph):
        with EstimationService(
            serving_graph, graph_store="shm", default_burn_in=BURN_IN,
            name="swapped",
        ) as service:
            before = service.estimate(_query())
            assert service.graph_version == 1

            version = service.swap_graph(build_serving_graph(rng=99))
            assert version == 2
            after = service.estimate(_query())
            # fresh walk against the new publication, not a cache echo
            assert after.cached is False
            assert after.graph_version == 2
            assert before.graph_version == 1
            assert service.stats()["cache"]["invalidations"] == 1


class TestReadOnlyServing:
    def test_source_graph_is_frozen_at_publish(self, serving_graph, shm_service):
        with pytest.raises(GraphError, match="read-only"):
            serving_graph.add_edge(0, 1)
        assert "estimation service" in serving_graph.frozen

    def test_serving_buffers_are_sealed(self, shm_service):
        csr = shm_service.csr
        assert csr.sealed is not None
        with pytest.raises(ValueError, match="read-only"):
            csr.indices[0] = 0


class TestStores:
    def test_mmap_store_serves_identically_to_shm(self, shm_service):
        with EstimationService(
            build_serving_graph(), graph_store="mmap",
            default_burn_in=BURN_IN, name="mmap-served",
        ) as mapped:
            assert mapped.csr.store == "mmap"
            answer = mapped.estimate(_query(budget=30))
            reference = shm_service.estimate(_query(budget=30))
            assert answer.estimates == reference.estimates

    def test_array_native_graph_serves_without_conversion(self):
        # CSRGraph input (label_array already flat) skips the dict path.
        source = build_serving_graph()
        from repro.graph.csr import csr_view
        from repro.service.core import publishable_csr_view

        csr = publishable_csr_view(csr_view(source))
        assert isinstance(csr.label_array(), np.ndarray)
        with EstimationService(
            csr, graph_store="shm", default_burn_in=BURN_IN, name="array",
        ) as service:
            answer = service.estimate(_query(budget=15))
            assert len(answer.estimates) == 6


class TestValidation:
    def test_unknown_field_rejected(self, ram_service):
        with pytest.raises(ConfigurationError, match="unknown query fields"):
            ram_service.estimate(_query(bogus=1))

    def test_missing_labels_rejected(self, ram_service):
        with pytest.raises(ConfigurationError, match="t1 and t2"):
            ram_service.estimate({"budget": 10})

    def test_missing_budget_rejected(self, ram_service):
        with pytest.raises(ConfigurationError, match="budget"):
            ram_service.estimate({"t1": 1, "t2": 2})

    def test_non_positive_budget_rejected(self, ram_service):
        with pytest.raises(ConfigurationError):
            ram_service.estimate(_query(budget=0))

    def test_negative_burn_in_rejected(self, ram_service):
        with pytest.raises(ConfigurationError, match="burn_in"):
            ram_service.estimate(_query(burn_in=-1))

    def test_unknown_algorithm_rejected(self, ram_service):
        with pytest.raises(ConfigurationError, match="servable"):
            ram_service.estimate(_query(algorithm="NoSuchAlgorithm"))

    def test_zero_target_pair_raises_experiment_error(self, ram_service):
        with pytest.raises(ExperimentError, match="no target edges"):
            ram_service.estimate(_query(t1="ghost", t2="ghost"))

    def test_defaults_filled_from_service(self, ram_service):
        answer = ram_service.estimate({"t1": 1, "t2": 2, "budget": 10})
        assert answer.repetitions == ram_service.default_repetitions
        assert answer.burn_in == ram_service.default_burn_in
        assert answer.algorithm == "NeighborSample-HH"

    def test_typed_queries_accepted(self, ram_service):
        query = EstimateQuery(
            "NeighborSample-HH", 1, 2, budget=12, seed=USER_SEED,
            repetitions=6, burn_in=BURN_IN,
        )
        answer = ram_service.estimate(query)
        assert answer.budget == 12


class TestAnswerPayload:
    def test_to_dict_is_json_ready(self, ram_service):
        import json

        answer = ram_service.estimate(_query())
        payload = json.loads(json.dumps(answer.to_dict()))
        assert payload["budget"] == 20
        assert payload["nrmse"] >= 0
        assert len(payload["api_calls"]) == 6

    def test_stats_snapshot_is_json_ready(self, ram_service):
        import json

        ram_service.estimate(_query())
        stats = json.loads(json.dumps(ram_service.stats()))
        assert stats["graph"]["num_nodes"] == 250
        assert stats["fleets"]["steps_per_second"] > 0
        assert stats["defaults"]["burn_in"] == BURN_IN
