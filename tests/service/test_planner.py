"""Query planning: coalescing rules, seed derivation, cache keys."""

from repro.experiments.planner import FleetSpec
from repro.experiments.runner import _derive_group_seed
from repro.service import EstimateQuery, plan_queries
from repro.utils.rng import derive_seed


def _query(**overrides) -> EstimateQuery:
    fields = dict(
        algorithm="NeighborSample-HH",
        t1=1,
        t2=2,
        budget=20,
        seed=7,
        repetitions=6,
        burn_in=5,
    )
    fields.update(overrides)
    return EstimateQuery(**fields)


class TestSeedDerivation:
    def test_fleet_seed_matches_batch_harness(self):
        # The property that makes served answers bit-compatible with the
        # batch CLI: both derive the fleet seed the same way.
        query = _query(seed=123, algorithm="EX-RW")
        assert query.fleet_seed() == derive_seed(123, "EX-RW", "prefix")
        assert query.fleet_seed() == _derive_group_seed(123, "EX-RW")

    def test_spec_pins_algorithm_seed_repetitions_burn_in(self):
        spec = _query().spec()
        assert spec == FleetSpec(
            "NeighborSample-HH", derive_seed(7, "NeighborSample-HH", "prefix"), 6, 5
        )


class TestPlanQueries:
    def test_shareable_queries_coalesce_into_one_plan(self):
        # Different pairs and budgets, same walk parameters: one fleet.
        queries = [
            _query(t1=1, t2=2, budget=10),
            _query(t1=2, t2=2, budget=40),
            _query(t1=1, t2=1, budget=25),
        ]
        plans = plan_queries(queries)
        assert len(plans) == 1
        assert plans[0].max_budget == 40
        assert plans[0].num_queries == 3
        assert plans[0].queries == queries  # arrival order preserved

    def test_different_walk_parameters_split_plans(self):
        queries = [
            _query(),
            _query(algorithm="EX-RW"),
            _query(seed=8),
            _query(repetitions=7),
            _query(burn_in=6),
        ]
        plans = plan_queries(queries)
        assert len(plans) == 5
        # plan order follows first appearance
        assert [plan.queries[0] for plan in plans] == queries

    def test_duplicate_queries_share_a_slot_in_one_plan(self):
        query = _query()
        plans = plan_queries([query, query])
        assert len(plans) == 1
        assert plans[0].num_queries == 2
        assert plans[0].max_budget == query.budget

    def test_empty_batch_plans_nothing(self):
        assert plan_queries([]) == []


class TestCacheKey:
    def test_key_embeds_the_graph_version(self):
        query = _query()
        assert query.cache_key(1) != query.cache_key(2)

    def test_key_distinguishes_every_query_field(self):
        base = _query()
        variants = [
            _query(algorithm="EX-RW"),
            _query(t1=2),
            _query(t2=1),
            _query(budget=21),
            _query(seed=8),
            _query(repetitions=7),
            _query(burn_in=6),
        ]
        keys = {variant.cache_key(1) for variant in variants}
        assert base.cache_key(1) not in keys
        assert len(keys) == len(variants)

    def test_equal_queries_share_a_key(self):
        assert _query().cache_key(3) == _query().cache_key(3)
