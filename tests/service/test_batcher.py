"""MicroBatcher: window coalescing, failure isolation, disconnects.

No pytest-asyncio in the container — each test drives its own event
loop with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.exceptions import ConfigurationError, ExperimentError
from repro.service import EstimationService, MicroBatcher
from repro.service.planner import EstimateQuery

WINDOW = 0.02
BURN_IN = 5  # matches the conftest fixtures


def _query(**overrides) -> dict:
    fields = dict(
        algorithm="NeighborSample-HH",
        t1=1,
        t2=2,
        budget=20,
        seed=7,
        repetitions=6,
        burn_in=BURN_IN,
    )
    fields.update(overrides)
    return fields


class TestCoalescing:
    def test_concurrent_mixed_budget_clients_share_one_fleet(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)
        before = ram_service.fleets_built

        async def scenario():
            return await asyncio.gather(
                batcher.submit(_query(budget=10)),
                batcher.submit(_query(budget=40, t1=2, t2=2)),
                batcher.submit(_query(budget=25)),
            )

        answers = asyncio.run(scenario())
        # three clients, three answers, ONE walk
        assert ram_service.fleets_built - before == 1
        assert batcher.batches_flushed == 1
        assert batcher.peak_batch_size == 3
        assert [answer.budget for answer in answers] == [10, 40, 25]
        assert all(len(answer.estimates) == 6 for answer in answers)

    def test_batched_answers_bit_identical_to_sequential(self, serving_graph):
        # The same queries through a fresh service, one at a time, must
        # produce the same estimates the coalesced batch produced —
        # prefix-reuse exactness surviving the batching layer.
        queries = [
            _query(budget=10),
            _query(budget=40),
            _query(budget=25, t1=2, t2=2),
        ]

        with EstimationService(
            serving_graph, graph_store="ram", default_burn_in=BURN_IN,
            name="batched",
        ) as batched_service:
            batcher = MicroBatcher(batched_service, WINDOW)

            async def scenario():
                return await asyncio.gather(
                    *(batcher.submit(query) for query in queries)
                )

            batched = asyncio.run(scenario())
            assert batched_service.fleets_built == 1

        with EstimationService(
            serving_graph, graph_store="ram", default_burn_in=BURN_IN,
            cache_size=0, name="sequential",
        ) as sequential_service:
            sequential = [sequential_service.estimate(query) for query in queries]
            assert sequential_service.fleets_built == len(queries)

        for fast, slow in zip(batched, sequential):
            assert fast.estimates == slow.estimates
            assert fast.api_calls == slow.api_calls

    def test_requests_after_a_flush_start_a_new_batch(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)

        async def scenario():
            first = await batcher.submit(_query(budget=10))
            second = await batcher.submit(_query(budget=10, seed=8))
            return first, second

        asyncio.run(scenario())
        assert batcher.batches_flushed == 2

    def test_drain_flushes_without_waiting_for_the_window(self, ram_service):
        batcher = MicroBatcher(ram_service, window_seconds=30.0)

        async def scenario():
            task = asyncio.ensure_future(batcher.submit(_query(budget=10)))
            await asyncio.sleep(0)
            assert batcher.in_flight == 1
            await batcher.drain()
            return await task

        answer = asyncio.run(scenario())
        assert len(answer.estimates) == 6
        assert batcher.in_flight == 0


class TestFailureIsolation:
    def test_bad_query_does_not_poison_batch_mates(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)

        async def scenario():
            return await asyncio.gather(
                batcher.submit(_query()),
                batcher.submit(_query(algorithm="NoSuchAlgorithm")),
                return_exceptions=True,
            )

        good, bad = asyncio.run(scenario())
        assert good.budget == 20 and len(good.estimates) == 6
        assert isinstance(bad, ConfigurationError)

    def test_zero_target_pair_fails_only_its_own_slot(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)

        async def scenario():
            return await asyncio.gather(
                batcher.submit(_query()),
                batcher.submit(_query(t1="ghost", t2="ghost")),
                return_exceptions=True,
            )

        good, bad = asyncio.run(scenario())
        assert len(good.estimates) == 6
        assert isinstance(bad, ExperimentError)

    def test_client_disconnect_mid_batch_does_not_poison_the_fleet(
        self, ram_service
    ):
        batcher = MicroBatcher(ram_service, WINDOW)

        async def scenario():
            doomed = asyncio.ensure_future(batcher.submit(_query(budget=40)))
            survivor = asyncio.ensure_future(batcher.submit(_query(budget=10)))
            await asyncio.sleep(0)  # both parked in the window
            doomed.cancel()
            answer = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return answer

        answer = asyncio.run(scenario())
        assert len(answer.estimates) == 6
        assert batcher.queries_dropped == 1
        assert batcher.batches_flushed == 1

    def test_engine_crash_fails_every_pending_future(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)

        def explode(queries):
            raise RuntimeError("engine down")

        ram_service_estimate_many = ram_service.estimate_many
        try:
            ram_service.estimate_many = explode

            async def scenario():
                return await asyncio.gather(
                    batcher.submit(_query()),
                    batcher.submit(_query(seed=8)),
                    return_exceptions=True,
                )

            results = asyncio.run(scenario())
        finally:
            ram_service.estimate_many = ram_service_estimate_many
        assert all(isinstance(result, RuntimeError) for result in results)


class TestCancellationTiming:
    """The two disconnect regressions: during the window vs mid-execute.

    Historically a future cancelled *during the window* stayed in the
    batch, shifted the result-to-future pairing, and served the wrong
    answers; one cancelled *mid-execute* could detonate delivery.  The
    fix drops done futures before the walk and skips them at delivery —
    these tests pin each half separately.
    """

    def test_cancel_during_window_is_dropped_before_the_walk(self, ram_service):
        # All clients vanish inside the window: the batch must not
        # execute at all — no flush, no fleet, no walk.
        batcher = MicroBatcher(ram_service, WINDOW)
        before = ram_service.fleets_built

        async def scenario():
            doomed = [
                asyncio.ensure_future(batcher.submit(_query(budget=budget)))
                for budget in (10, 40)
            ]
            await asyncio.sleep(0)  # both parked in the window
            for future in doomed:
                future.cancel()
            await asyncio.sleep(WINDOW * 3)  # let the window close
            for future in doomed:
                with pytest.raises(asyncio.CancelledError):
                    await future

        asyncio.run(scenario())
        assert batcher.queries_dropped == 2
        assert batcher.batches_flushed == 0
        assert ram_service.fleets_built == before

    def test_drain_waits_for_a_flush_already_executing(self, ram_service):
        # Once a flush starts executing it drops its window-task
        # reference; drain (the shutdown path) must still wait it out
        # instead of orphaning the batch mid-walk.
        import threading

        started = threading.Event()
        release = threading.Event()
        real = ram_service.estimate_many

        def gated(queries, deadlines=None):
            started.set()
            assert release.wait(10), "gate never released"
            return real(queries)

        batcher = MicroBatcher(ram_service, WINDOW)
        ram_service.estimate_many = gated
        try:

            async def scenario():
                submitted = asyncio.ensure_future(batcher.submit(_query()))
                while not started.is_set():
                    await asyncio.sleep(0.001)
                asyncio.get_running_loop().call_later(0.05, release.set)
                await batcher.drain()
                assert submitted.done()
                return await submitted

            answer = asyncio.run(scenario())
        finally:
            ram_service.estimate_many = real
        assert len(answer.estimates) == 6

    def test_cancel_during_execute_still_serves_siblings(self, ram_service):
        # One client vanishes while the shared fleet is walking: the
        # surviving sibling still gets *its own* answer (pairing intact)
        # and the walk is not poisoned.
        import threading

        started = threading.Event()
        release = threading.Event()
        real = ram_service.estimate_many

        def gated(queries, deadlines=None):
            started.set()
            assert release.wait(10), "gate never released"
            return real(queries)

        batcher = MicroBatcher(ram_service, WINDOW)
        ram_service.estimate_many = gated
        try:

            async def scenario():
                doomed = asyncio.ensure_future(batcher.submit(_query(budget=40)))
                survivor = asyncio.ensure_future(batcher.submit(_query(budget=10)))
                while not started.is_set():  # the batch is mid-execute
                    await asyncio.sleep(0.001)
                doomed.cancel()
                release.set()
                answer = await survivor
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return answer

            answer = asyncio.run(scenario())
        finally:
            ram_service.estimate_many = real
        assert answer.budget == 10 and len(answer.estimates) == 6
        assert batcher.batches_flushed == 1
        assert batcher.queries_dropped == 1  # counted at delivery this time


class TestConstructionAndStats:
    def test_negative_window_rejected(self, ram_service):
        with pytest.raises(ValueError):
            MicroBatcher(ram_service, window_seconds=-1.0)

    def test_typed_queries_accepted(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)
        query = EstimateQuery(
            "NeighborSample-HH", 1, 2, budget=15, seed=7,
            repetitions=6, burn_in=BURN_IN,
        )
        answer = asyncio.run(batcher.submit(query))
        assert answer.budget == 15

    def test_stats_counters(self, ram_service):
        batcher = MicroBatcher(ram_service, WINDOW)

        async def scenario():
            await asyncio.gather(
                batcher.submit(_query()), batcher.submit(_query(budget=30))
            )

        asyncio.run(scenario())
        stats = batcher.stats()
        assert stats["queries_submitted"] == 2
        assert stats["batches_flushed"] == 1
        assert stats["peak_batch_size"] == 2
        assert stats["queries_dropped"] == 0
        assert stats["in_flight"] == 0
        assert stats["window_seconds"] == WINDOW
