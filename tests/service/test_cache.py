"""AnswerCache: LRU behaviour, invalidation, and the /stats counters."""

import pytest

from repro.exceptions import ConfigurationError
from repro.service import AnswerCache


class TestBasics:
    def test_round_trip(self):
        cache = AnswerCache(4)
        cache.put(("a",), 1)
        assert cache.get(("a",)) == 1
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = AnswerCache(4)
        assert cache.get(("nope",)) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AnswerCache(-1)


class TestLRU:
    def test_eviction_drops_least_recently_used(self):
        cache = AnswerCache(2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) == 2
        assert cache.get(("c",)) == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = AnswerCache(2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # now "b" is the LRU entry
        cache.put(("c",), 3)
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) is None

    def test_overwrite_same_key_does_not_grow(self):
        cache = AnswerCache(2)
        cache.put(("a",), 1)
        cache.put(("a",), 2)
        assert len(cache) == 1
        assert cache.get(("a",)) == 2

    def test_zero_capacity_disables_caching(self):
        cache = AnswerCache(0)
        cache.put(("a",), 1)
        assert len(cache) == 0
        assert cache.get(("a",)) is None


class TestInvalidate:
    def test_invalidate_empties_and_reports(self):
        cache = AnswerCache(8)
        for index in range(3):
            cache.put((index,), index)
        assert cache.invalidate() == 3
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get((0,)) is None


class TestStats:
    def test_hit_rate(self):
        cache = AnswerCache(4)
        assert cache.hit_rate == 0.0
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.get(("b",))
        assert cache.hit_rate == pytest.approx(0.5)

    def test_stats_snapshot(self):
        cache = AnswerCache(4)
        cache.put(("a",), 1)
        cache.get(("a",))
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["max_size"] == 4
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 1.0
        assert stats["evictions"] == 0
        assert stats["invalidations"] == 0
