"""Warm restarts: the answer-cache snapshot round trip.

The serving-layer leg of the durability story: a service with a
``snapshot_path`` checkpoints its cache (atomic, checksummed) on
``close()`` and on the periodic timer, and a fresh service booted
against the *same graph content* replays it — the first repeated query
after a restart is a cache hit, bit-identical to the pre-crash answer.
A corrupt or foreign snapshot costs a cold cache, never a poisoned one.
"""

from __future__ import annotations

from repro.datasets.labeling import assign_binary_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.service import EstimationService

BURN_IN = 5  # matches the conftest fixtures


def build_serving_graph(rng: int = 7):
    graph = powerlaw_cluster_osn(250, 5, 0.3, rng=rng)
    assign_binary_labels(graph, 0.5, labels=(1, 2), rng=rng + 1)
    return graph


def _query(**overrides):
    fields = dict(
        algorithm="NeighborSample-HH",
        t1=1,
        t2=2,
        budget=30,
        seed=7,
        repetitions=6,
        burn_in=BURN_IN,
    )
    fields.update(overrides)
    return fields


def _service(graph, snapshot_path):
    return EstimationService(
        graph,
        graph_store="ram",
        default_repetitions=6,
        default_burn_in=BURN_IN,
        snapshot_path=snapshot_path,
        name="test-snap",
    )


class TestSnapshotRoundTrip:
    def test_close_snapshots_and_restart_serves_from_cache(self, tmp_path):
        snap = tmp_path / "cache.snap"
        first = _service(build_serving_graph(), snap)
        warm = first.estimate(_query())
        assert not warm.cached
        first.close()
        assert snap.exists()
        assert first.snapshots_written >= 1

        # Same graph content (same seeds) => fingerprint matches.
        second = _service(build_serving_graph(), snap)
        try:
            assert second.snapshot_loaded_entries == 1
            assert second.snapshot_load_error is None
            answer = second.estimate(_query())
            assert answer.cached
            assert answer.estimates == warm.estimates
            assert answer.api_calls == warm.api_calls
        finally:
            second.close()

    def test_save_snapshot_is_explicit_and_counted(self, tmp_path):
        snap = tmp_path / "cache.snap"
        service = _service(build_serving_graph(), snap)
        try:
            service.estimate(_query())
            assert service.save_snapshot()
            assert service.snapshots_written == 1
            assert service.last_snapshot_age_seconds() is not None
            assert service.last_snapshot_age_seconds() >= 0.0
        finally:
            service.close()

    def test_graph_mismatch_cold_starts(self, tmp_path):
        snap = tmp_path / "cache.snap"
        first = _service(build_serving_graph(), snap)
        first.estimate(_query())
        first.close()

        other = _service(build_serving_graph(rng=8), snap)
        try:
            assert other.snapshot_loaded_entries == 0
            assert "different graph" in other.snapshot_load_error
            # Still serves; the query just walks.
            assert not other.estimate(_query()).cached
        finally:
            other.snapshot_path = None  # keep the mismatch evidence
            other.close()

    def test_corrupt_snapshot_cold_starts(self, tmp_path):
        snap = tmp_path / "cache.snap"
        first = _service(build_serving_graph(), snap)
        first.estimate(_query())
        first.close()
        raw = bytearray(snap.read_bytes())
        raw[-3] ^= 0xFF
        snap.write_bytes(bytes(raw))

        second = _service(build_serving_graph(), snap)
        try:
            assert second.snapshot_loaded_entries == 0
            assert second.snapshot_load_error is not None
            assert not second.estimate(_query()).cached
        finally:
            second.snapshot_path = None
            second.close()

    def test_snapshot_failures_never_raise(self, tmp_path):
        # Point the snapshot at an unwritable location: save_snapshot
        # must report False and count the failure, not kill the server.
        service = _service(
            build_serving_graph(), tmp_path / "missing-dir" / "cache.snap"
        )
        try:
            service.estimate(_query())
            assert service.save_snapshot() is False
            assert service.snapshot_failures == 1
        finally:
            service.snapshot_path = None
            service.close()


class TestDurabilityReporting:
    def test_stats_and_health_carry_the_durability_block(self, tmp_path):
        snap = tmp_path / "cache.snap"
        service = _service(build_serving_graph(), snap)
        try:
            service.estimate(_query())
            service.save_snapshot()
            durability = service.stats()["durability"]
            assert durability["snapshot_path"] == str(snap)
            assert durability["snapshots_written"] == 1
            assert durability["snapshot_failures"] == 0
            assert durability["last_snapshot_age_seconds"] >= 0.0
            assert set(durability["artifacts"]) == {"verified", "failed", "skipped"}
            assert "last_snapshot_age_seconds" in service.health()
        finally:
            service.close()

    def test_health_omits_snapshot_age_when_snapshots_are_off(self, tmp_path):
        service = EstimationService(
            build_serving_graph(),
            graph_store="ram",
            default_repetitions=6,
            default_burn_in=BURN_IN,
            name="test-nosnap",
        )
        try:
            assert "last_snapshot_age_seconds" not in service.health()
        finally:
            service.close()
