"""Property-based tests for the labeled-motif extension's exact counters."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.labeled_motifs import count_target_triangles, count_target_wedges
from repro.graph.labeled_graph import LabeledGraph

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=40
)


def random_labeled_graph(edges, seed):
    rng = random.Random(seed)
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    for node in graph.nodes():
        graph.set_labels(node, [rng.choice(["a", "b", "c"])])
    return graph


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_wedge_count_symmetric_in_end_labels(edges, seed):
    graph = random_labeled_graph(edges, seed)
    if graph.num_nodes == 0:
        return
    assert count_target_wedges(graph, "a", "b", "c") == count_target_wedges(graph, "c", "b", "a")


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_wedge_count_bounded_by_total_wedges(edges, seed):
    graph = random_labeled_graph(edges, seed)
    if graph.num_nodes == 0:
        return
    total_wedges = sum(
        graph.degree(node) * (graph.degree(node) - 1) // 2 for node in graph.nodes()
    )
    labeled = count_target_wedges(graph, "a", "b", "c")
    assert 0 <= labeled <= total_wedges


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_triangle_count_invariant_under_label_permutation(edges, seed):
    graph = random_labeled_graph(edges, seed)
    if graph.num_nodes == 0:
        return
    reference = count_target_triangles(graph, "a", "b", "c")
    assert count_target_triangles(graph, "b", "a", "c") == reference
    assert count_target_triangles(graph, "c", "b", "a") == reference


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_triangle_count_bounded_by_unlabeled_triangles(edges, seed):
    graph = random_labeled_graph(edges, seed)
    if graph.num_nodes == 0:
        return
    nx_graph = graph.to_networkx()
    import networkx as nx

    total_triangles = sum(nx.triangles(nx_graph).values()) // 3
    labeled = count_target_triangles(graph, "a", "b", "c")
    assert 0 <= labeled <= total_triangles
