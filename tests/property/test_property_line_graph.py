"""Property-based tests for the line-graph transform."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.line_graph import LineGraphAPI, LineGraphNode, build_line_graph
from repro.graph.statistics import count_target_edges

edge_lists = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=30
)


def labeled_graph_from(edges, seed):
    rng = random.Random(seed)
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    for node in graph.nodes():
        graph.set_labels(node, [rng.choice(["a", "b"])])
    return graph


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_line_graph_node_and_edge_counts(edges, seed):
    """|H| = |E| and |R| = Σ_v C(d(v), 2) for any input graph."""
    graph = labeled_graph_from(edges, seed)
    if graph.num_edges == 0:
        return
    line = build_line_graph(graph, "a", "b")
    assert line.num_nodes == graph.num_edges
    expected_edges = sum(
        graph.degree(node) * (graph.degree(node) - 1) // 2 for node in graph.nodes()
    )
    assert line.num_edges == expected_edges


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_target_nodes_of_line_graph_equal_target_edges(edges, seed):
    """Counting target nodes in G' is exactly counting target edges in G."""
    graph = labeled_graph_from(edges, seed)
    if graph.num_edges == 0:
        return
    line = build_line_graph(graph, "a", "b")
    target_nodes = sum(1 for node in line.nodes() if line.has_label(node, "target"))
    assert target_nodes == count_target_edges(graph, "a", "b")


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_lazy_api_agrees_with_materialised_line_graph(edges, seed):
    """The lazy LineGraphAPI and the materialised G' give identical views."""
    graph = labeled_graph_from(edges, seed)
    if graph.num_edges == 0:
        return
    line = build_line_graph(graph, "a", "b")
    api = LineGraphAPI(RestrictedGraphAPI(graph), "a", "b")
    assert api.num_nodes == line.num_nodes
    for u, v in list(graph.edges())[:10]:
        node = LineGraphNode.from_edge(u, v)
        assert set(api.neighbors(node)) == set(line.neighbors(node))
        assert api.degree(node) == line.degree(node)
        assert api.is_target(node) == line.has_label(node, "target")
