"""Property-based tests for thinning, mixing helpers and walk bookkeeping."""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph
from repro.walks.batched import (
    KernelSpec,
    kernel_move_probabilities,
    kernel_stationary_weights,
)
from repro.walks.compiled import (
    _accept_probability,
    _scalar_pow,
    has_accept_draw,
    pow_like_scalar,
)
from repro.walks.mixing import (
    node_index,
    stationary_distribution,
    total_variation_distance,
    transition_matrix,
)
from repro.walks.thinning import thin_indices, thinning_interval


class TestThinningProperties:
    @given(k=st.integers(0, 5000), fraction=st.floats(0.001, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_indices_are_sorted_unique_and_in_range(self, k, fraction):
        indices = thin_indices(k, fraction)
        assert indices == sorted(set(indices))
        assert all(0 <= i < k for i in indices)

    @given(k=st.integers(1, 5000), fraction=st.floats(0.001, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_first_index_is_zero_and_gap_constant(self, k, fraction):
        indices = thin_indices(k, fraction)
        assert indices[0] == 0
        interval = thinning_interval(k, fraction)
        gaps = {b - a for a, b in zip(indices, indices[1:])}
        assert gaps <= {interval}

    @given(k=st.integers(1, 5000))
    @settings(max_examples=100, deadline=None)
    def test_larger_fraction_keeps_fewer_samples(self, k):
        fine = thin_indices(k, 0.01)
        coarse = thin_indices(k, 0.2)
        assert len(coarse) <= len(fine)


def random_connected_graph(rng, size):
    """A random connected graph built from a random tree plus extra edges."""
    graph = LabeledGraph()
    nodes = list(range(size))
    for index in range(1, size):
        graph.add_edge(nodes[index], nodes[rng.randrange(index)])
    extra = rng.randrange(0, size)
    for _ in range(extra):
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


class TestMixingProperties:
    @given(seed=st.integers(0, 2**16), size=st.integers(3, 25))
    @settings(max_examples=60, deadline=None)
    def test_transition_matrix_row_stochastic_and_pi_fixed_point(self, seed, size):
        import random

        rng = random.Random(seed)
        graph = random_connected_graph(rng, size)
        index = node_index(graph)
        matrix = transition_matrix(graph, index)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        pi = stationary_distribution(graph, index)
        assert abs(pi.sum() - 1.0) < 1e-9
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    @given(
        p=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20),
        q=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_total_variation_bounds(self, p, q):
        size = min(len(p), len(q))
        p_arr = np.array(p[:size])
        q_arr = np.array(q[:size])
        if p_arr.sum() == 0 or q_arr.sum() == 0:
            return
        p_arr = p_arr / p_arr.sum()
        q_arr = q_arr / q_arr.sum()
        distance = total_variation_distance(p_arr, q_arr)
        assert -1e-12 <= distance <= 1.0 + 1e-12
        assert total_variation_distance(p_arr, p_arr) == 0.0
        # symmetry
        assert distance == total_variation_distance(q_arr, p_arr)


#: Degrees cover everything a paper-scale OSN can produce.
DEGREES = st.integers(1, 1_000_000)


class TestCompiledScalarTwins:
    """The compiled kernels' scalar accept/stationary formulas must agree
    with the numpy engine's vectorized formulas to the last ULP — ``==``
    on floats, no tolerance — or the two engines drift bit-wise.

    Kernel ids mirror ``repro.walks.compiled._KERNEL_IDS``:
    mhrw=2, rcmh=3, mdrw=4, gmd=5.
    """

    @given(du=DEGREES, dv=DEGREES)
    @settings(max_examples=300, deadline=None)
    def test_mhrw_accept_ulp_identical(self, du, dv):
        expected = kernel_move_probabilities(
            KernelSpec("mhrw"), np.array([du]), np.array([dv])
        )
        assert _accept_probability(2, du, dv, 0.0, 0.0, 0.0) == expected[0]

    @given(du=DEGREES, dv=DEGREES, alpha=st.floats(0.001, 1.0))
    @settings(max_examples=300, deadline=None)
    @example(du=3, dv=7, alpha=0.5)  # numpy's ** 0.5 -> sqrt fast path
    @example(du=7, dv=3, alpha=1.0)  # ...and its ** 1.0 -> identity path
    def test_rcmh_accept_ulp_identical(self, du, dv, alpha):
        spec = KernelSpec("rcmh", alpha=alpha)
        expected = kernel_move_probabilities(
            spec, np.array([du]), np.array([dv])
        )
        assert _accept_probability(3, du, dv, alpha, 0.0, 0.0) == expected[0]

    @given(du=DEGREES, headroom=st.integers(0, 1_000_000))
    @settings(max_examples=200, deadline=None)
    def test_mdrw_accept_ulp_identical(self, du, headroom):
        max_degree = float(du + headroom)
        spec = KernelSpec("mdrw", max_degree=max_degree)
        expected = kernel_move_probabilities(spec, np.array([du]), None)
        assert _accept_probability(4, du, 0, 0.0, 0.0, max_degree) == expected[0]

    @given(
        du=DEGREES,
        d_max=DEGREES,
        delta=st.floats(0.001, 1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_gmd_accept_ulp_identical(self, du, d_max, delta):
        spec = KernelSpec("gmd", max_degree=float(d_max), delta=delta)
        expected = kernel_move_probabilities(spec, np.array([du]), None)
        assert (
            _accept_probability(5, du, 0, 0.0, delta, float(d_max))
            == expected[0]
        )

    @given(degree=DEGREES, alpha=st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    @example(degree=5, alpha=0.5)  # 1 - alpha = 0.5: the sqrt fast path
    def test_rcmh_stationary_weight_ulp_identical(self, degree, alpha):
        spec = KernelSpec("rcmh", alpha=alpha)
        expected = kernel_stationary_weights(spec, np.array([degree]))
        assert _scalar_pow(float(degree), 1.0 - alpha) == expected[0]

    @given(
        x=st.floats(1e-6, 1e6),
        y=st.one_of(st.sampled_from([0.5, 1.0, 2.0]), st.floats(0.0, 1.0)),
    )
    @settings(max_examples=300, deadline=None)
    def test_scalar_pow_matches_vectorized_twin_and_python_pow(self, x, y):
        """One pow, three tiers: the njit scalar, the numpy engine's
        vectorized helper, and — for generic exponents — Python's ``**``
        (libm, what the scalar reference paths call) must agree to the
        bit.  At the 0.5/1.0/2.0 fast paths both helpers use sqrt /
        identity / x*x, which libm pow need not match ULP-for-ULP."""
        scalar = _scalar_pow(x, y)
        assert scalar == pow_like_scalar(np.array([x]), y)[0]
        if y not in (0.5, 1.0, 2.0):
            assert scalar == x ** y

    @given(alpha=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_accept_draw_consumption_matches_formula_table(self, alpha):
        """Both engines draw an accept uniform iff the formula table
        returns probabilities — the RNG-consumption contract."""
        spec = KernelSpec("rcmh", alpha=alpha)
        probabilities = kernel_move_probabilities(
            spec, np.array([3]), np.array([5])
        )
        assert has_accept_draw(spec) == (probabilities is not None)
