"""Property-based tests for thinning, mixing helpers and walk bookkeeping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph
from repro.walks.mixing import (
    node_index,
    stationary_distribution,
    total_variation_distance,
    transition_matrix,
)
from repro.walks.thinning import thin_indices, thinning_interval


class TestThinningProperties:
    @given(k=st.integers(0, 5000), fraction=st.floats(0.001, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_indices_are_sorted_unique_and_in_range(self, k, fraction):
        indices = thin_indices(k, fraction)
        assert indices == sorted(set(indices))
        assert all(0 <= i < k for i in indices)

    @given(k=st.integers(1, 5000), fraction=st.floats(0.001, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_first_index_is_zero_and_gap_constant(self, k, fraction):
        indices = thin_indices(k, fraction)
        assert indices[0] == 0
        interval = thinning_interval(k, fraction)
        gaps = {b - a for a, b in zip(indices, indices[1:])}
        assert gaps <= {interval}

    @given(k=st.integers(1, 5000))
    @settings(max_examples=100, deadline=None)
    def test_larger_fraction_keeps_fewer_samples(self, k):
        fine = thin_indices(k, 0.01)
        coarse = thin_indices(k, 0.2)
        assert len(coarse) <= len(fine)


def random_connected_graph(rng, size):
    """A random connected graph built from a random tree plus extra edges."""
    graph = LabeledGraph()
    nodes = list(range(size))
    for index in range(1, size):
        graph.add_edge(nodes[index], nodes[rng.randrange(index)])
    extra = rng.randrange(0, size)
    for _ in range(extra):
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


class TestMixingProperties:
    @given(seed=st.integers(0, 2**16), size=st.integers(3, 25))
    @settings(max_examples=60, deadline=None)
    def test_transition_matrix_row_stochastic_and_pi_fixed_point(self, seed, size):
        import random

        rng = random.Random(seed)
        graph = random_connected_graph(rng, size)
        index = node_index(graph)
        matrix = transition_matrix(graph, index)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        pi = stationary_distribution(graph, index)
        assert abs(pi.sum() - 1.0) < 1e-9
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    @given(
        p=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20),
        q=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_total_variation_bounds(self, p, q):
        size = min(len(p), len(q))
        p_arr = np.array(p[:size])
        q_arr = np.array(q[:size])
        if p_arr.sum() == 0 or q_arr.sum() == 0:
            return
        p_arr = p_arr / p_arr.sum()
        q_arr = q_arr / q_arr.sum()
        distance = total_variation_distance(p_arr, q_arr)
        assert -1e-12 <= distance <= 1.0 + 1e-12
        assert total_variation_distance(p_arr, p_arr) == 0.0
        # symmetry
        assert distance == total_variation_distance(q_arr, p_arr)
