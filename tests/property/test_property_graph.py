"""Property-based tests for the labeled-graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.cleaning import connected_components, deduplicate_edges, largest_connected_component
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import count_target_edges, target_incident_counts

# Edge lists over a small node universe so duplicates and self-loops appear often.
edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=60
)
label_values = st.sampled_from(["a", "b", "c"])


def build_graph(edges, labels_by_node):
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    for node in graph.nodes():
        graph.set_labels(node, [labels_by_node(node)])
    return graph


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(edges):
    """Sum of degrees equals twice the number of edges, whatever we insert."""
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    assert sum(graph.degree(node) for node in graph.nodes()) == 2 * graph.num_edges


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_edges_iterator_matches_edge_count(edges):
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    listed = list(graph.edges())
    assert len(listed) == graph.num_edges
    assert len({frozenset(edge) for edge in listed}) == graph.num_edges


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_target_incident_counts_sum_to_twice_f(edges, seed):
    """Σ_u T(u) = 2F for any graph and any labeling."""
    import random

    rng = random.Random(seed)
    graph = build_graph(edges, lambda node: rng.choice(["a", "b", "c"]))
    if graph.num_nodes == 0:
        return
    count = count_target_edges(graph, "a", "b")
    incident = target_incident_counts(graph, "a", "b")
    assert sum(incident.values()) == 2 * count


@given(edges=edge_lists, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_target_count_symmetry(edges, seed):
    """F(t1, t2) = F(t2, t1)."""
    import random

    rng = random.Random(seed)
    graph = build_graph(edges, lambda node: rng.choice(["a", "b", "c"]))
    if graph.num_nodes == 0:
        return
    assert count_target_edges(graph, "a", "b") == count_target_edges(graph, "b", "a")


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_deduplicate_is_idempotent(edges):
    once = deduplicate_edges(edges)
    twice = deduplicate_edges(once)
    assert once == twice


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_components_partition_the_nodes(edges):
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    if graph.num_nodes == 0:
        return
    components = connected_components(graph)
    all_nodes = [node for component in components for node in component]
    assert len(all_nodes) == graph.num_nodes
    assert set(all_nodes) == set(graph.nodes())
    # sizes are non-increasing
    sizes = [len(component) for component in components]
    assert sizes == sorted(sizes, reverse=True)


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_largest_component_is_connected_subgraph(edges):
    graph = LabeledGraph()
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    if graph.num_nodes == 0:
        return
    lcc = largest_connected_component(graph)
    assert lcc.num_nodes <= graph.num_nodes
    assert lcc.num_edges <= graph.num_edges
    assert len(connected_components(lcc)) <= 1 or lcc.num_nodes == 0
