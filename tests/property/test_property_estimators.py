"""Property-based tests for the estimators' algebraic invariants.

These run the estimator formulas over randomly generated sample sets
(not over random graphs — the statistical behaviour is covered by the
integration tests) and check invariants that must hold for *any* input:
non-negativity, zero-on-no-targets, scale equivariance in |E|, and the
exact Hansen–Hurwitz extremes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers.base import EdgeSample, EdgeSampleSet, NodeSample, NodeSampleSet

edge_flags = st.lists(st.booleans(), min_size=1, max_size=200)

node_entries = st.lists(
    st.tuples(st.integers(1, 50), st.integers(0, 50)).map(
        lambda pair: (pair[0], min(pair[1], pair[0]))  # T(u) can never exceed d(u)
    ),
    min_size=1,
    max_size=200,
)


def make_edge_set(flags, num_edges):
    samples = [
        EdgeSample(u=i, v=i + 1, is_target=flag, step_index=i) for i, flag in enumerate(flags)
    ]
    return EdgeSampleSet(samples=samples, num_edges=num_edges, num_nodes=max(2, num_edges // 2))


def make_node_set(entries, num_edges, num_nodes):
    samples = [
        NodeSample(
            node=i, degree=d, has_target_label=t > 0, incident_target_edges=t, step_index=i
        )
        for i, (d, t) in enumerate(entries)
    ]
    return NodeSampleSet(samples=samples, num_edges=num_edges, num_nodes=num_nodes)


EDGE_ESTIMATORS = [EdgeHansenHurwitzEstimator(), EdgeHorvitzThompsonEstimator(None)]
NODE_ESTIMATORS = [
    NodeHansenHurwitzEstimator(),
    NodeHorvitzThompsonEstimator(None),
    NodeReweightedEstimator(),
]


@given(flags=edge_flags, num_edges=st.integers(2, 10_000))
@settings(max_examples=80, deadline=None)
def test_edge_estimators_are_non_negative_and_bounded(flags, num_edges):
    sample_set = make_edge_set(flags, num_edges)
    for estimator in EDGE_ESTIMATORS:
        value = estimator.estimate(sample_set).estimate
        assert value >= 0
        # No estimator can report more target edges than |E| scaled by the
        # worst-case inclusion correction; for HH the hard cap is exactly |E|.
    hh = EdgeHansenHurwitzEstimator().estimate(sample_set).estimate
    assert hh <= num_edges + 1e-9


@given(flags=edge_flags, num_edges=st.integers(2, 10_000))
@settings(max_examples=80, deadline=None)
def test_edge_estimators_zero_iff_no_target_samples(flags, num_edges):
    sample_set = make_edge_set(flags, num_edges)
    has_targets = any(flags)
    for estimator in EDGE_ESTIMATORS:
        value = estimator.estimate(sample_set).estimate
        if has_targets:
            assert value > 0
        else:
            assert value == 0


@given(flags=edge_flags, num_edges=st.integers(2, 5_000))
@settings(max_examples=80, deadline=None)
def test_edge_hh_scales_linearly_in_num_edges(flags, num_edges):
    base = EdgeHansenHurwitzEstimator().estimate(make_edge_set(flags, num_edges)).estimate
    doubled = EdgeHansenHurwitzEstimator().estimate(make_edge_set(flags, 2 * num_edges)).estimate
    assert doubled == base * 2 or (base == 0 and doubled == 0)


@given(entries=node_entries, num_edges=st.integers(100, 10_000), num_nodes=st.integers(2, 10_000))
@settings(max_examples=80, deadline=None)
def test_node_estimators_are_non_negative(entries, num_edges, num_nodes):
    sample_set = make_node_set(entries, num_edges, num_nodes)
    for estimator in NODE_ESTIMATORS:
        assert estimator.estimate(sample_set).estimate >= 0


@given(entries=node_entries, num_edges=st.integers(100, 10_000), num_nodes=st.integers(2, 10_000))
@settings(max_examples=80, deadline=None)
def test_node_estimators_zero_iff_no_incident_targets(entries, num_edges, num_nodes):
    sample_set = make_node_set(entries, num_edges, num_nodes)
    has_targets = any(t > 0 for _, t in entries)
    for estimator in NODE_ESTIMATORS:
        value = estimator.estimate(sample_set).estimate
        if has_targets:
            assert value > 0
        else:
            assert value == 0


@given(entries=node_entries, num_edges=st.integers(2, 5_000))
@settings(max_examples=80, deadline=None)
def test_node_hh_scales_linearly_in_num_edges(entries, num_edges):
    small = NodeHansenHurwitzEstimator().estimate(make_node_set(entries, num_edges, 100)).estimate
    large = NodeHansenHurwitzEstimator().estimate(
        make_node_set(entries, 3 * num_edges, 100)
    ).estimate
    if small == 0:
        assert large == 0
    else:
        assert large == pytest.approx(small * 3)


@given(entries=node_entries, num_nodes=st.integers(2, 5_000))
@settings(max_examples=80, deadline=None)
def test_reweighted_scales_linearly_in_num_nodes(entries, num_nodes):
    small = NodeReweightedEstimator().estimate(make_node_set(entries, 100, num_nodes)).estimate
    large = NodeReweightedEstimator().estimate(make_node_set(entries, 100, 2 * num_nodes)).estimate
    assert large == small * 2 or (small == 0 and large == 0)


@given(entries=node_entries)
@settings(max_examples=80, deadline=None)
def test_reweighted_bounded_by_half_num_nodes_times_max_t(entries):
    """F̂_RW = |V|/2 · weighted-mean(T) ≤ |V|/2 · max(T) for any sample."""
    num_nodes = 1000
    sample_set = make_node_set(entries, 100, num_nodes)
    value = NodeReweightedEstimator().estimate(sample_set).estimate
    max_t = max(t for _, t in entries)
    assert value <= num_nodes / 2 * max_t + 1e-9
