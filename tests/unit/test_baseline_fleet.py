"""Unit tests for the vectorized EX-* baseline kernels and line fleets.

Deterministic (fast-tier) properties of the accept/reject vectorization:
kernel degenerations (``alpha`` ∈ {0, 1}, ``delta`` = 1), max-degree
validation, isolated-walker errors, exact-RNG replay of every baseline
kernel against the reference engine, rejection-aware ledger accounting,
and the prefix/fleet bit-equality that the prefix-reuse sweep engine
relies on.  The statistical fleet-vs-sequential equivalence lives in
``tests/integration/test_baseline_fleet_equivalence.py``.
"""

import random

import numpy as np
import pytest

from repro.baselines import line_graph_max_degree, make_baseline
from repro.baselines.fleet import (
    classify_line_fleet,
    reweighted_estimates,
    run_baseline_fleet,
)
from repro.core.samplers.csr_backend import sample_edges_fleet
from repro.exceptions import ConfigurationError, WalkError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import run_trials, run_trials_prefix
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.labeled_graph import LabeledGraph
from repro.utils.rng import ensure_numpy_rng
from repro.walks.batched import (
    BatchedWalkEngine,
    KernelSpec,
    csr_walk,
    kernel_stationary_weights,
    resolve_kernel_spec,
)
from repro.walks.engine import RandomWalk
from repro.walks.kernels import (
    GeneralMaximumDegreeKernel,
    MaximumDegreeKernel,
    MetropolisHastingsKernel,
    RejectionControlledMHKernel,
)
from repro.walks.line_batched import BatchedLineWalkEngine


@pytest.fixture(scope="module")
def csr_osn(gender_osn):
    return csr_view(gender_osn)


class TestKernelSpecs:
    def test_instances_carry_their_knobs(self):
        spec = resolve_kernel_spec(GeneralMaximumDegreeKernel(40.0, delta=0.6))
        assert (spec.name, spec.max_degree, spec.delta) == ("gmd", 40.0, 0.6)
        spec = resolve_kernel_spec(RejectionControlledMHKernel(alpha=0.15))
        assert (spec.name, spec.alpha) == ("rcmh", 0.15)
        spec = resolve_kernel_spec(MaximumDegreeKernel(17))
        assert (spec.name, spec.max_degree) == ("mdrw", 17.0)

    def test_bare_md_names_need_max_degree(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel_spec("mdrw")
        with pytest.raises(ConfigurationError):
            resolve_kernel_spec("gmd")
        # With an explicit spec the knob is there.
        assert resolve_kernel_spec(KernelSpec("mdrw", max_degree=5.0)).max_degree == 5.0

    def test_probe_flags(self):
        assert KernelSpec("mhrw").probes_proposals
        assert KernelSpec("rcmh", alpha=0.2).probes_proposals
        assert not KernelSpec("rcmh", alpha=0.0).probes_proposals
        assert not KernelSpec("mdrw", max_degree=5.0).probes_proposals
        assert not KernelSpec("gmd", max_degree=5.0).probes_proposals
        assert not KernelSpec("simple").probes_proposals

    def test_stationary_weight_formulas(self):
        degrees = np.array([1, 4, 10], dtype=np.int64)
        assert np.array_equal(
            kernel_stationary_weights(KernelSpec("simple"), degrees), [1.0, 4.0, 10.0]
        )
        assert np.array_equal(
            kernel_stationary_weights(KernelSpec("mhrw"), degrees), [1.0, 1.0, 1.0]
        )
        rcmh = kernel_stationary_weights(KernelSpec("rcmh", alpha=0.5), degrees)
        assert np.allclose(rcmh, degrees**0.5)
        gmd = kernel_stationary_weights(
            KernelSpec("gmd", max_degree=10.0, delta=0.5), degrees
        )
        assert np.array_equal(gmd, [5.0, 5.0, 10.0])


class TestExactReplay:
    """csr_walk(exact_rng=True) must replay the reference kernels bit for bit."""

    @pytest.mark.parametrize(
        "make_kernel, make_spec",
        [
            (
                lambda d: MetropolisHastingsKernel(),
                lambda d: KernelSpec("mhrw"),
            ),
            (
                lambda d: MaximumDegreeKernel(d),
                lambda d: KernelSpec("mdrw", max_degree=d),
            ),
            (
                lambda d: RejectionControlledMHKernel(0.25),
                lambda d: KernelSpec("rcmh", alpha=0.25),
            ),
            (
                lambda d: RejectionControlledMHKernel(0.0),
                lambda d: KernelSpec("rcmh", alpha=0.0),
            ),
            (
                lambda d: GeneralMaximumDegreeKernel(d, 0.4),
                lambda d: KernelSpec("gmd", max_degree=d, delta=0.4),
            ),
        ],
        ids=["mhrw", "mdrw", "rcmh", "rcmh-alpha0", "gmd"],
    )
    def test_kernel_replays_reference_engine(
        self, gender_osn, csr_osn, make_kernel, make_spec
    ):
        max_degree = max(gender_osn.degree(node) for node in gender_osn.nodes())
        start = next(iter(gender_osn.nodes()))
        reference = RandomWalk(
            RestrictedGraphAPI(gender_osn), make_kernel(max_degree), rng=99
        ).run(120, start_node=start)
        path = csr_walk(
            csr_osn,
            120,
            csr_osn.index_of(start),
            random.Random(99),
            kernel=make_spec(max_degree),
            exact_rng=True,
        )
        ids = csr_osn.node_ids
        assert [ids[int(i)] for i in path] == reference.nodes


class TestVectorizedAcceptMask:
    def test_rcmh_alpha_zero_degenerates_to_simple(self, csr_osn):
        srw = BatchedWalkEngine(csr_osn, kernel="simple", rng=5)
        rcmh = BatchedWalkEngine(csr_osn, kernel=KernelSpec("rcmh", alpha=0.0), rng=5)
        a = srw.run_fleet(8, 40)
        b = rcmh.run_fleet(8, 40)
        assert np.array_equal(a.trajectories, b.trajectories)
        assert b.probed is None  # no proposal pages were probed

    def test_rcmh_alpha_one_degenerates_to_mhrw(self, csr_osn):
        mh = BatchedWalkEngine(csr_osn, kernel="mhrw", rng=6)
        rcmh = BatchedWalkEngine(csr_osn, kernel=KernelSpec("rcmh", alpha=1.0), rng=6)
        a = mh.run_fleet(8, 40)
        b = rcmh.run_fleet(8, 40)
        assert np.array_equal(a.trajectories, b.trajectories)
        assert np.array_equal(a.probed, b.probed)

    def test_gmd_delta_one_degenerates_to_mdrw(self, csr_osn):
        max_degree = float(csr_osn.degrees.max())
        md = BatchedWalkEngine(
            csr_osn, kernel=KernelSpec("mdrw", max_degree=max_degree), rng=7
        )
        gmd = BatchedWalkEngine(
            csr_osn, kernel=KernelSpec("gmd", max_degree=max_degree, delta=1.0), rng=7
        )
        assert np.array_equal(
            md.run_fleet(8, 40).trajectories, gmd.run_fleet(8, 40).trajectories
        )

    def test_mdrw_rejects_degree_above_max(self, csr_osn):
        engine = BatchedWalkEngine(
            csr_osn, kernel=KernelSpec("mdrw", max_degree=2.0), rng=8
        )
        with pytest.raises(WalkError):
            engine.run_fleet(16, 30)

    def test_rejected_walkers_stay_in_place(self, csr_osn):
        """With a huge max degree the MD walk must self-loop essentially
        always — the vectorized mask's 'stay' branch."""
        engine = BatchedWalkEngine(
            csr_osn, kernel=KernelSpec("mdrw", max_degree=1e12), rng=9
        )
        fleet = engine.run_fleet(6, 25)
        assert np.array_equal(
            fleet.trajectories, np.repeat(fleet.trajectories[:, :1], 26, axis=1)
        )
        # A permanently-stalled crawler downloads exactly one page.
        assert np.array_equal(fleet.charged_calls(), np.ones(6, dtype=np.int64))

    def test_probed_pages_enter_the_ledgers(self, csr_osn):
        fleet = BatchedWalkEngine(csr_osn, kernel="mhrw", rng=10).run_fleet(5, 30)
        assert fleet.probed is not None
        expected = [
            len(set(fleet.trajectories[w].tolist()) | set(fleet.probed[w].tolist()))
            for w in range(5)
        ]
        assert fleet.charged_calls().tolist() == expected

    def test_isolated_start_raises(self):
        graph = LabeledGraph()
        graph.add_edge(0, 1)
        graph.add_node(2)  # isolated
        csr = csr_view(graph)
        engine = BatchedWalkEngine(csr, kernel="mhrw", rng=1)
        with pytest.raises(WalkError):
            engine.run_fleet(4, 5, start_nodes=[2, 0, 1, 0])


class TestLineFleet:
    def test_isolated_dyad_line_node_raises(self):
        # A single-edge graph: its line graph is one isolated node.
        csr = CSRGraph.from_edge_array(np.array([[0, 1]]))
        engine = BatchedLineWalkEngine(csr, kernel="simple", rng=1)
        with pytest.raises(WalkError):
            engine.run_fleet(3, 4)

    def test_non_backtracking_rejected(self, csr_osn):
        with pytest.raises(ConfigurationError):
            BatchedLineWalkEngine(csr_osn, kernel="non_backtracking")

    def test_visited_line_nodes_are_edges(self, csr_osn):
        """Every visited line node must be an actual edge of G and every
        transition must share an endpoint (line-graph adjacency)."""
        fleet = BatchedLineWalkEngine(csr_osn, kernel="mhrw", rng=3).run_fleet(6, 30)
        indptr, indices = csr_osn.indptr, csr_osn.indices
        for w in range(fleet.num_walkers):
            for t in range(fleet.src.shape[1]):
                u, v = int(fleet.src[w, t]), int(fleet.dst[w, t])
                assert v in indices[indptr[u] : indptr[u + 1]]
                if t:
                    prev = {int(fleet.src[w, t - 1]), int(fleet.dst[w, t - 1])}
                    assert prev & {u, v}

    def test_prefix_is_bitwise_initial_segment(self, csr_osn):
        engine = BatchedLineWalkEngine(csr_osn, kernel="mhrw", rng=11)
        fleet = engine.run_fleet(5, 40, burn_in=10)
        short = fleet.prefix(15)
        assert np.array_equal(short.src, fleet.src[:, : 10 + 15 + 1])
        assert np.array_equal(short.probed_src, fleet.probed_src[:, : 10 + 15])
        # Ledgers recomputed over the truncation must match a fleet run
        # to exactly that budget from the same seed.
        fresh = BatchedLineWalkEngine(csr_osn, kernel="mhrw", rng=11).run_fleet(
            5, 15, burn_in=10
        )
        assert np.array_equal(short.src, fresh.src)
        assert np.array_equal(short.dst, fresh.dst)
        assert np.array_equal(short.charged_calls(), fresh.charged_calls())

    def test_rejection_probes_enter_line_ledgers(self, csr_osn):
        fleet = BatchedLineWalkEngine(csr_osn, kernel="mhrw", rng=13).run_fleet(4, 25)
        expected = [
            len(
                set(fleet.src[w].tolist())
                | set(fleet.dst[w].tolist())
                | set(fleet.probed_src[w].tolist())
                | set(fleet.probed_dst[w].tolist())
            )
            for w in range(4)
        ]
        assert fleet.charged_calls().tolist() == expected

    def test_md_ledgers_exclude_probes(self, csr_osn):
        max_degree = float(line_graph_max_degree(csr_osn))
        fleet = BatchedLineWalkEngine(
            csr_osn, kernel=KernelSpec("mdrw", max_degree=max_degree), rng=14
        ).run_fleet(4, 25)
        assert fleet.probed_src is None
        expected = [
            len(set(fleet.src[w].tolist()) | set(fleet.dst[w].tolist()))
            for w in range(4)
        ]
        assert fleet.charged_calls().tolist() == expected


class TestBaselineFleetEstimation:
    def test_classification_weights_follow_the_kernel(self, gender_osn, csr_osn):
        max_degree = line_graph_max_degree(gender_osn)
        for name, expected in [
            ("EX-RW", None),  # weights = line degrees
            ("EX-MHRW", 1.0),
        ]:
            baseline = make_baseline(name, line_max_degree=max_degree)
            fleet = run_baseline_fleet(csr_osn, baseline, 20, 4, rng=5)
            assert fleet.kernel == baseline.csr_kernel_spec()
            batch = classify_line_fleet(csr_osn, fleet, 1, 2)
            line_degrees = (
                csr_osn.degrees[batch.sources] + csr_osn.degrees[batch.dests] - 2
            )
            if expected is None:
                assert np.array_equal(batch.weights, line_degrees.astype(float))
            else:
                assert np.array_equal(batch.weights, np.full(batch.sources.shape, expected))
            assert batch.num_edges == gender_osn.num_edges
            estimates = reweighted_estimates(batch)
            assert estimates.shape == (4,)
            assert np.isfinite(estimates).all()

    def test_reweighted_estimates_match_hand_computation(self, csr_osn):
        baseline = make_baseline("EX-RW")
        fleet = run_baseline_fleet(csr_osn, baseline, 15, 3, rng=8)
        batch = classify_line_fleet(csr_osn, fleet, 1, 2)
        estimates = reweighted_estimates(batch)
        for trial in range(3):
            num = sum(
                float(batch.is_target[trial, i]) / batch.weights[trial, i]
                for i in range(batch.k)
            )
            den = sum(1.0 / batch.weights[trial, i] for i in range(batch.k))
            assert estimates[trial] == pytest.approx(batch.num_edges * num / den)

    def test_prefix_max_column_matches_fleet_cell(self, gender_osn):
        """run_trials_prefix's largest budget column must be bit-identical
        to a fresh fleet cell at the same seed — the same guarantee the
        proposed algorithms have."""
        suite = build_algorithm_suite(gender_osn, algorithms=["EX-MHRW", "EX-GMD"])
        for name in suite:
            row = run_trials_prefix(
                gender_osn, 1, 2, suite[name], name, [10, 30], 5, 8, seed=21
            )
            cell = run_trials(
                gender_osn, 1, 2, suite[name], name,
                sample_size=30, repetitions=5, burn_in=8, seed=21,
                execution="fleet",
            )
            assert row[-1].estimates == cell.estimates
            assert row[-1].api_calls == cell.api_calls
            # Smaller columns come from the same walk's prefixes.
            assert row[0].sample_size == 10

    def test_csr_native_run_trials_dispatches_baselines(self, csr_osn):
        suite = build_algorithm_suite(csr_osn, algorithms=["EX-RCMH"])
        outcome = run_trials(
            csr_osn, 1, 2, suite["EX-RCMH"], "EX-RCMH",
            sample_size=20, repetitions=4, burn_in=5, seed=3,
            execution="fleet",
        )
        assert len(outcome.estimates) == 4

    def test_sample_edges_fleet_rejects_self_looping_kernels(self, csr_osn):
        """NeighborSample needs a traversed edge per step; an MH fleet
        that stayed in place must raise like the scalar paths do."""
        with pytest.raises(WalkError, match="self-loop"):
            sample_edges_fleet(
                csr_osn, 1, 2, k=40, repetitions=8,
                rng=ensure_numpy_rng(4), kernel="mhrw",
            )

    def test_explore_nodes_fleet_carries_weights_for_mh_kernel(self, csr_osn):
        from repro.core.samplers.csr_backend import explore_nodes_fleet

        batch = explore_nodes_fleet(
            csr_osn, 1, 2, k=12, repetitions=3, rng=ensure_numpy_rng(4), kernel="mhrw"
        )
        assert np.array_equal(batch.weights, np.ones((3, 12)))
        thinned = batch.thinned(0.5)
        assert thinned.weights.shape == thinned.nodes.shape
        simple = explore_nodes_fleet(
            csr_osn, 1, 2, k=12, repetitions=3, rng=ensure_numpy_rng(4)
        )
        assert simple.weights is None

    def test_csr_line_max_degree_matches_dict(self, gender_osn, csr_osn):
        assert line_graph_max_degree(csr_osn) == line_graph_max_degree(gender_osn)


class TestScalarSamplerParity:
    """Scalar CSR samplers with MH-family kernels keep reference parity."""

    def test_ne_exact_rng_charged_call_parity(self, gender_osn):
        """exact_rng NeighborExploration with an MH kernel must replay the
        python backend bit for bit — rejected-proposal page probes
        included in the charged-call accounting."""
        from repro.core.samplers import NeighborExplorationSampler

        for make_kernel in (
            MetropolisHastingsKernel,
            lambda: RejectionControlledMHKernel(0.3),
        ):
            reference = NeighborExplorationSampler(
                RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10,
                kernel=make_kernel(), rng=42, backend="python",
            ).sample(50)
            csr = NeighborExplorationSampler(
                RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10,
                kernel=make_kernel(), rng=42, backend="csr", exact_rng=True,
            ).sample(50)
            assert [s.node for s in reference.samples] == [s.node for s in csr.samples]
            assert reference.api_calls_used == csr.api_calls_used

    def test_ns_self_loop_kernels_raise_on_both_backends(self, gender_osn):
        """NeighborSample needs a traversed edge per step; a staying MH
        kernel must raise the same WalkError on either backend."""
        from repro.core.samplers import NeighborSampleSampler

        for backend, extra in (("python", {}), ("csr", {"exact_rng": True})):
            sampler = NeighborSampleSampler(
                RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10,
                kernel=MetropolisHastingsKernel(), rng=42, backend=backend, **extra,
            )
            with pytest.raises(WalkError, match="self-loop"):
                sampler.sample(50)

    def test_csr_walk_returns_probes_for_mh_family(self, csr_osn):
        path, probes = csr_walk(
            csr_osn, 20, 3, 5, kernel="mhrw", return_probes=True
        )
        assert probes.shape == (20,)
        # Accepted steps moved to their proposal; every position is
        # either the probe of its step or the previous position (stay).
        previous = 3
        for step in range(20):
            assert path[step] in (probes[step], previous)
            previous = path[step]
        simple_path, simple_probes = csr_walk(
            csr_osn, 20, 3, 5, kernel="simple", return_probes=True
        )
        assert simple_probes is None and simple_path.shape == (20,)
