"""Unit tests for table / figure rendering."""

import pytest

from repro.experiments.reporting import (
    best_algorithms,
    format_frequency_series,
    format_markdown_table,
    format_nrmse_table,
    format_summary_table,
)
from repro.experiments.runner import NRMSETable, TrialOutcome
from repro.experiments.sweeps import FrequencyPoint


@pytest.fixture
def sample_table():
    table = NRMSETable(
        dataset="Toy",
        target_pair=(1, 2),
        true_count=100,
        sample_sizes=[10, 50],
        sample_fractions=[0.01, 0.05],
    )
    table.cells["AlgA"] = [
        TrialOutcome("AlgA", 10, 100, estimates=[90.0, 110.0]),
        TrialOutcome("AlgA", 50, 100, estimates=[95.0, 105.0]),
    ]
    table.cells["AlgB"] = [
        TrialOutcome("AlgB", 10, 100, estimates=[60.0, 140.0]),
        TrialOutcome("AlgB", 50, 100, estimates=[99.0, 101.0]),
    ]
    return table


class TestNRMSETableRendering:
    def test_contains_all_rows_and_columns(self, sample_table):
        text = format_nrmse_table(sample_table)
        assert "AlgA" in text and "AlgB" in text
        assert "1.0%|V|" in text and "5.0%|V|" in text
        assert "number of target edges=100" in text

    def test_best_cell_marked(self, sample_table):
        text = format_nrmse_table(sample_table)
        # AlgA wins the first column (0.1 vs 0.4), AlgB the second.
        assert "*0.100*" in text
        assert "*0.010*" in text

    def test_custom_caption(self, sample_table):
        text = format_nrmse_table(sample_table, caption="My caption")
        assert text.startswith("My caption")

    def test_markdown_rendering(self, sample_table):
        markdown = format_markdown_table(sample_table, caption="Table X")
        assert markdown.count("|") > 10
        assert "**Table X**" in markdown
        assert "**0.100**" in markdown


class TestSummaries:
    def test_best_algorithms(self, sample_table):
        name, value = best_algorithms(sample_table)
        assert name == "AlgB"
        assert value == pytest.approx(0.01)

    def test_best_algorithms_first_column(self, sample_table):
        name, _ = best_algorithms(sample_table, column=0)
        assert name == "AlgA"

    def test_summary_table(self):
        text = format_summary_table(
            [("Facebook", (1, 2), "NeighborSample-HT", 0.104)],
            caption="Best algorithms",
        )
        assert "Facebook" in text
        assert "NeighborSample-HT" in text
        assert "0.104" in text


class TestFrequencySeries:
    def test_rendering(self):
        points = [
            FrequencyPoint((1, 2), 10, 0.001, {"AlgA": 0.5, "AlgB": 0.7}),
            FrequencyPoint((3, 4), 100, 0.01, {"AlgA": 0.2}),
        ]
        text = format_frequency_series(points)
        assert "0.001000" in text
        assert "AlgA" in text and "AlgB" in text
        # the missing AlgB value in the second point renders as '-'
        assert "-" in text.splitlines()[-1]
