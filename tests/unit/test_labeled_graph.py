"""Unit tests for :mod:`repro.graph.labeled_graph`."""

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    EmptyGraphError,
    GraphError,
    LabelError,
    NodeNotFoundError,
)
from repro.graph.labeled_graph import LabeledGraph, validate_target_labels


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert len(graph) == 0

    def test_add_node_idempotent(self):
        graph = LabeledGraph()
        graph.add_node("u", labels=["a"])
        graph.add_node("u", labels=["b"])
        assert graph.num_nodes == 1
        assert graph.labels_of("u") == frozenset({"a", "b"})

    def test_add_edge_creates_nodes(self):
        graph = LabeledGraph()
        assert graph.add_edge(1, 2) is True
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_add_edge_duplicate_ignored(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        assert graph.add_edge(2, 1) is False
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = LabeledGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_add_edges_from_counts_new_only(self):
        graph = LabeledGraph()
        added = graph.add_edges_from([(1, 2), (2, 3), (1, 2)])
        assert added == 2
        assert graph.num_edges == 2

    def test_remove_node_updates_edges(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.remove_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 0
        assert not graph.has_edge(1, 2)

    def test_remove_missing_node_raises(self):
        graph = LabeledGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(99)


class TestQueries:
    def test_degree_and_neighbors(self, triangle_graph):
        assert triangle_graph.degree(1) == 2
        assert set(triangle_graph.neighbors(1)) == {2, 3}
        assert triangle_graph.neighbor_set(1) == frozenset({2, 3})

    def test_neighbors_returns_copy(self, triangle_graph):
        neighbors = triangle_graph.neighbors(1)
        neighbors.append(99)
        assert 99 not in triangle_graph.neighbors(1)

    def test_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.neighbors(42)
        with pytest.raises(NodeNotFoundError):
            triangle_graph.degree(42)
        with pytest.raises(NodeNotFoundError):
            triangle_graph.labels_of(42)

    def test_edges_each_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        canonical = {frozenset(edge) for edge in edges}
        assert canonical == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}

    def test_contains_and_iter(self, triangle_graph):
        assert 1 in triangle_graph
        assert 42 not in triangle_graph
        assert set(iter(triangle_graph)) == {1, 2, 3}

    def test_total_degree_is_twice_edges(self, triangle_graph):
        assert triangle_graph.total_degree() == 2 * triangle_graph.num_edges

    def test_degree_extremes(self, star_graph):
        assert star_graph.max_degree() == 5
        assert star_graph.min_degree() == 1
        assert star_graph.average_degree() == pytest.approx(10 / 6)

    def test_average_degree_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            LabeledGraph().average_degree()


class TestLabels:
    def test_set_and_add_label(self, triangle_graph):
        triangle_graph.add_label(1, "extra")
        assert triangle_graph.has_label(1, "extra")
        triangle_graph.set_labels(1, ["only"])
        assert triangle_graph.labels_of(1) == frozenset({"only"})

    def test_set_label_missing_node(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.set_labels(42, ["a"])

    def test_nodes_with_label(self, triangle_graph):
        assert set(triangle_graph.nodes_with_label("a")) == {1, 2}
        assert triangle_graph.nodes_with_label("missing") == []

    def test_all_labels(self, triangle_graph):
        assert triangle_graph.all_labels() == {"a", "b"}

    def test_validate_target_labels_passes_single_present(self, triangle_graph):
        # One label present, the other absent: allowed (true count is 0).
        validate_target_labels(triangle_graph, "a", "zzz")

    def test_validate_target_labels_raises_both_absent(self, triangle_graph):
        with pytest.raises(LabelError):
            validate_target_labels(triangle_graph, "qq", "zzz")


class TestTargetEdges:
    def test_is_target_edge_both_orientations(self, triangle_graph):
        assert triangle_graph.is_target_edge(1, 3, "a", "b")
        assert triangle_graph.is_target_edge(3, 1, "a", "b")
        assert triangle_graph.is_target_edge(1, 3, "b", "a")

    def test_is_target_edge_false_for_same_label_pair(self, triangle_graph):
        assert not triangle_graph.is_target_edge(1, 2, "a", "b")

    def test_is_target_edge_missing_edge(self, star_graph):
        with pytest.raises(EdgeNotFoundError):
            star_graph.is_target_edge(1, 2, "hub", "leaf")

    def test_same_label_target(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        graph.set_labels(1, ["a"])
        graph.set_labels(2, ["a"])
        assert graph.is_target_edge(1, 2, "a", "a")

    def test_target_edges_incident_to(self, triangle_graph):
        assert triangle_graph.target_edges_incident_to(3, "a", "b") == 2
        assert triangle_graph.target_edges_incident_to(1, "a", "b") == 1
        assert triangle_graph.target_edges_incident_to(2, "a", "b") == 1

    def test_target_edges_incident_to_unlabeled_node(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        graph.set_labels(1, ["a"])
        # node 2 has no labels at all
        assert graph.target_edges_incident_to(2, "a", "b") == 0

    def test_target_incident_sums_to_twice_count(self, path_graph):
        total = sum(
            path_graph.target_edges_incident_to(node, "x", "y") for node in path_graph.nodes()
        )
        assert total == 2 * 3

    def test_node_with_both_labels(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.set_labels(1, ["a", "b"])
        graph.set_labels(2, ["a"])
        graph.set_labels(3, ["b"])
        # Edge (1,2): 1 has b, 2 has a -> target.  Edge (1,3): 1 has a, 3 has b -> target.
        assert graph.target_edges_incident_to(1, "a", "b") == 2


class TestConversions:
    def test_to_from_networkx_roundtrip(self, triangle_graph):
        nx_graph = triangle_graph.to_networkx()
        rebuilt = LabeledGraph.from_networkx(nx_graph)
        assert rebuilt.num_nodes == triangle_graph.num_nodes
        assert rebuilt.num_edges == triangle_graph.num_edges
        assert rebuilt.labels_of(3) == frozenset({"b"})

    def test_from_networkx_scalar_label(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_node(1, labels="solo")
        nx_graph.add_node(2)
        nx_graph.add_edge(1, 2)
        graph = LabeledGraph.from_networkx(nx_graph)
        assert graph.labels_of(1) == frozenset({"solo"})
        assert graph.labels_of(2) == frozenset()

    def test_from_edges_with_labels(self):
        graph = LabeledGraph.from_edges([(1, 2), (2, 2), (2, 3)], {1: ["a"], 3: ["b"]})
        # the self-loop (2, 2) is silently dropped
        assert graph.num_edges == 2
        assert graph.labels_of(1) == frozenset({"a"})

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.add_edge(1, 4)
        clone.add_label(1, "new")
        assert not triangle_graph.has_node(4)
        assert not triangle_graph.has_label(1, "new")
        assert clone.num_edges == triangle_graph.num_edges + 1
