"""Tests for the package's public surface (imports, exports, version)."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exported(self):
        assert callable(repro.estimate_target_edge_count)
        assert callable(repro.load_dataset)
        assert callable(repro.count_target_edges)
        assert "NeighborSample-HH" in repro.ALGORITHMS

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.core.samplers",
            "repro.core.estimators",
            "repro.core.selector",
            "repro.graph",
            "repro.walks",
            "repro.baselines",
            "repro.datasets",
            "repro.experiments",
            "repro.extensions",
            "repro.osn",
            "repro.utils",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_lists_resolve(self):
        for module_name in (
            "repro.core",
            "repro.graph",
            "repro.walks",
            "repro.baselines",
            "repro.datasets",
            "repro.experiments",
            "repro.extensions",
            "repro.osn",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestDunderMain:
    def test_python_dash_m_entrypoint(self, capsys):
        # ``python -m repro`` routes through repro.__main__ / repro.cli.main;
        # exercise the module the same way runpy would, with --help.
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "repro-osn" in capsys.readouterr().out
