"""Unit tests for the mixing-time machinery."""

import numpy as np
import pytest

from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.exceptions import EmptyGraphError, MixingTimeError
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.mixing import (
    exact_mixing_time,
    node_index,
    recommended_burn_in,
    spectral_gap,
    spectral_mixing_bound,
    stationary_distribution,
    total_variation_distance,
    transition_matrix,
)


@pytest.fixture
def small_graph():
    return LabeledGraph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])


class TestMatrices:
    def test_transition_matrix_is_row_stochastic(self, small_graph):
        matrix = transition_matrix(small_graph)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_transition_matrix_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            transition_matrix(LabeledGraph())

    def test_stationary_distribution_is_degree_proportional(self, small_graph):
        index = node_index(small_graph)
        pi = stationary_distribution(small_graph, index)
        assert pi.sum() == pytest.approx(1.0)
        assert pi[index[3]] == pytest.approx(3 / 8)
        assert pi[index[4]] == pytest.approx(1 / 8)

    def test_stationary_distribution_is_fixed_point(self, small_graph):
        index = node_index(small_graph)
        matrix = transition_matrix(small_graph, index)
        pi = stationary_distribution(small_graph, index)
        assert np.allclose(pi @ matrix, pi)

    def test_stationary_needs_edges(self):
        graph = LabeledGraph()
        graph.add_node(1)
        with pytest.raises(EmptyGraphError):
            stationary_distribution(graph)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestExactMixingTime:
    def test_positive_and_bounded(self, small_graph):
        mixing = exact_mixing_time(small_graph, epsilon=1e-2, max_steps=500)
        assert 1 <= mixing <= 500

    def test_smaller_epsilon_needs_more_steps(self, small_graph):
        loose = exact_mixing_time(small_graph, epsilon=1e-1, max_steps=1000)
        tight = exact_mixing_time(small_graph, epsilon=1e-4, max_steps=1000)
        assert tight >= loose

    def test_subset_of_starts_is_lower_bound(self, small_graph):
        full = exact_mixing_time(small_graph, epsilon=1e-3, max_steps=1000)
        partial = exact_mixing_time(small_graph, epsilon=1e-3, max_steps=1000, start_nodes=[3])
        assert partial <= full

    def test_bipartite_graph_does_not_mix(self):
        # A single edge is bipartite: the walk oscillates and never converges.
        graph = LabeledGraph.from_edges([(1, 2)])
        with pytest.raises(MixingTimeError):
            exact_mixing_time(graph, epsilon=1e-3, max_steps=50)


class TestSpectral:
    def test_gap_in_unit_interval(self, small_graph):
        gap = spectral_gap(small_graph)
        assert 0.0 < gap <= 1.0

    def test_gap_of_bipartite_graph_is_zero(self):
        graph = LabeledGraph.from_edges([(1, 2)])
        assert spectral_gap(graph) == pytest.approx(0.0, abs=1e-9)

    def test_spectral_bound_dominates_exact(self, small_graph):
        exact = exact_mixing_time(small_graph, epsilon=1e-3, max_steps=2000)
        bound = spectral_mixing_bound(small_graph, epsilon=1e-3)
        assert bound >= exact

    def test_spectral_bound_bipartite_raises(self):
        graph = LabeledGraph.from_edges([(1, 2)])
        with pytest.raises(MixingTimeError):
            spectral_mixing_bound(graph)

    def test_sparse_and_dense_paths_agree(self):
        graph = powerlaw_cluster_osn(300, 3, 0.2, rng=5)
        from repro.walks import mixing as mixing_module

        dense_gap = spectral_gap(graph)
        original_limit = mixing_module._DENSE_EIGEN_LIMIT
        mixing_module._DENSE_EIGEN_LIMIT = 10  # force the sparse path
        try:
            sparse_gap = spectral_gap(graph)
        finally:
            mixing_module._DENSE_EIGEN_LIMIT = original_limit
        assert sparse_gap == pytest.approx(dense_gap, rel=1e-6)


class TestRecommendedBurnIn:
    def test_small_graph_uses_exact(self, small_graph):
        burn_in = recommended_burn_in(small_graph, epsilon=1e-2, rng=1)
        assert burn_in >= 1

    def test_large_graph_uses_spectral_bound(self):
        graph = powerlaw_cluster_osn(2500, 3, 0.2, rng=7)
        burn_in = recommended_burn_in(graph, rng=1, exact_threshold=1000)
        assert 1 <= burn_in <= 4 * graph.num_nodes

    def test_deterministic_given_seed(self, small_graph):
        assert recommended_burn_in(small_graph, rng=3) == recommended_burn_in(small_graph, rng=3)
