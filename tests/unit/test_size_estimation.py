"""Unit tests for the |V| / |E| estimators (the prior-knowledge substitute)."""

import pytest

from repro.exceptions import EstimationError
from repro.graph.api import RestrictedGraphAPI
from repro.osn.size_estimation import (
    estimate_graph_size,
    estimate_num_edges,
    estimate_num_nodes,
)
from repro.walks.engine import WalkResult


def synthetic_walk(nodes, degrees):
    return WalkResult(nodes=list(nodes), degrees=list(degrees), edges=[None] * len(nodes))


class TestNodeEstimator:
    def test_needs_two_samples(self):
        with pytest.raises(EstimationError):
            estimate_num_nodes(synthetic_walk([1], [2]))

    def test_needs_collisions(self):
        with pytest.raises(EstimationError):
            estimate_num_nodes(synthetic_walk([1, 2, 3], [2, 2, 2]))

    def test_regular_graph_formula(self):
        # 4 samples on a d-regular graph with one collision:
        # (Σd)(Σ1/d) / (2C) = (4d)(4/d) / 2 = 8
        walk = synthetic_walk([1, 2, 1, 3], [5, 5, 5, 5])
        assert estimate_num_nodes(walk) == pytest.approx(8.0)


class TestEdgeEstimator:
    def test_regular_graph_formula(self):
        walk = synthetic_walk([1, 2, 1, 3], [5, 5, 5, 5])
        # |E| = k · n̂ / (2 Σ 1/d) = 4 · 8 / (2 · 0.8) = 20 = n̂ · d / 2
        assert estimate_num_edges(walk) == pytest.approx(20.0)

    def test_empty_walk_raises(self):
        with pytest.raises(EstimationError):
            estimate_num_edges(synthetic_walk([], []))

    def test_explicit_num_nodes(self):
        walk = synthetic_walk([1, 2], [4, 4])
        assert estimate_num_edges(walk, num_nodes=10) == pytest.approx(2 * 10 / (2 * 0.5))


class TestEndToEnd:
    def test_estimates_close_to_truth(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        estimate = estimate_graph_size(api, sample_size=3000, burn_in=50, rng=5)
        assert estimate.collisions > 0
        assert estimate.num_nodes == pytest.approx(gender_osn.num_nodes, rel=0.5)
        assert estimate.num_edges == pytest.approx(gender_osn.num_edges, rel=0.5)
        assert estimate.api_calls > 0

    def test_invalid_sample_size(self, gender_osn):
        with pytest.raises(Exception):
            estimate_graph_size(RestrictedGraphAPI(gender_osn), sample_size=0)
