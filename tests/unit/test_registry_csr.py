"""``load_dataset(..., representation="csr")`` — the CSR-native registry path."""

import numpy as np
import pytest

from repro.core.pipeline import estimate_target_edge_count
from repro.datasets.registry import (
    REPRESENTATIONS,
    clear_dataset_cache,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import count_target_edges


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestRepresentationCSR:
    def test_returns_csr_graph(self):
        dataset = load_dataset("facebook", seed=1, scale=0.1, representation="csr")
        assert isinstance(dataset.graph, CSRGraph)
        assert dataset.representation == "csr"
        assert dataset.target_pairs == [(1, 2)]
        assert dataset.target_counts[(1, 2)] > 0

    def test_dict_default_unchanged(self):
        dataset = load_dataset("facebook", seed=1, scale=0.1)
        assert isinstance(dataset.graph, LabeledGraph)
        assert dataset.representation == "dict"

    @pytest.mark.parametrize("name", ["pokec", "orkut", "livejournal"])
    def test_label_models_and_pair_selection(self, name):
        dataset = load_dataset(name, seed=2, scale=0.1, representation="csr")
        assert len(dataset.target_pairs) == dataset.spec.num_target_pairs
        for pair in dataset.target_pairs:
            assert dataset.target_counts[pair] > 0
        fractions = [dataset.fraction(pair) for pair in dataset.target_pairs]
        # pairs are chosen to span the frequency range, rarest first
        assert fractions == sorted(fractions)

    def test_cache_keys_are_per_representation(self):
        dict_dataset = load_dataset("facebook", seed=3, scale=0.1)
        csr_dataset = load_dataset("facebook", seed=3, scale=0.1, representation="csr")
        assert dict_dataset is load_dataset("facebook", seed=3, scale=0.1)
        assert csr_dataset is load_dataset(
            "facebook", seed=3, scale=0.1, representation="csr"
        )
        assert dict_dataset is not csr_dataset

    def test_unknown_representation_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook", representation="sparse")
        assert REPRESENTATIONS == ("dict", "csr")

    def test_deterministic_per_seed(self):
        first = load_dataset("pokec", seed=4, scale=0.1, representation="csr", use_cache=False)
        second = load_dataset("pokec", seed=4, scale=0.1, representation="csr", use_cache=False)
        assert np.array_equal(first.graph.indices, second.graph.indices)
        assert np.array_equal(first.graph.label_array(), second.graph.label_array())
        assert first.target_pairs == second.target_pairs


class TestEscapeHatch:
    def test_lazy_and_cached(self):
        dataset = load_dataset("facebook", seed=5, scale=0.1, representation="csr")
        first = dataset.to_labeled_graph()
        assert isinstance(first, LabeledGraph)
        assert dataset.to_labeled_graph() is first

    def test_dict_dataset_returns_graph_itself(self):
        dataset = load_dataset("facebook", seed=5, scale=0.1)
        assert dataset.to_labeled_graph() is dataset.graph

    def test_counts_agree_across_the_hatch(self):
        dataset = load_dataset("orkut", seed=6, scale=0.1, representation="csr")
        graph = dataset.to_labeled_graph()
        for pair in dataset.target_pairs:
            assert count_target_edges(graph, *pair) == dataset.target_counts[pair]

    def test_python_backend_runs_through_the_hatch(self):
        dataset = load_dataset("facebook", seed=7, scale=0.1, representation="csr")
        result = estimate_target_edge_count(
            dataset.to_labeled_graph(),
            1,
            2,
            algorithm="NeighborSample-HH",
            sample_size=50,
            burn_in=10,
            seed=8,
        )
        assert result.estimate >= 0


class TestGraphStore:
    def test_mmap_dataset_is_memmap_backed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP_DIR", str(tmp_path))
        dataset = load_dataset(
            "facebook", seed=9, scale=0.1, representation="csr", graph_store="mmap"
        )
        assert dataset.graph.store == "mmap"
        assert list(tmp_path.glob("facebook-seed9-*.npz"))

    def test_mmap_never_aliases_the_ram_cache_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP_DIR", str(tmp_path))
        ram = load_dataset("facebook", seed=9, scale=0.1, representation="csr")
        mapped = load_dataset(
            "facebook", seed=9, scale=0.1, representation="csr", graph_store="mmap"
        )
        assert ram is not mapped
        assert ram.graph.store == "ram"
        assert mapped.graph.store == "mmap"
        # And each mode keeps serving its own cached entry.
        assert load_dataset("facebook", seed=9, scale=0.1, representation="csr") is ram
        assert (
            load_dataset(
                "facebook", seed=9, scale=0.1, representation="csr", graph_store="mmap"
            )
            is mapped
        )

    def test_mmap_arrays_bit_identical_to_ram(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP_DIR", str(tmp_path))
        ram = load_dataset("pokec", seed=10, scale=0.1, representation="csr")
        mapped = load_dataset(
            "pokec", seed=10, scale=0.1, representation="csr", graph_store="mmap"
        )
        assert np.array_equal(ram.graph.indptr, mapped.graph.indptr)
        assert np.array_equal(ram.graph.indices, mapped.graph.indices)
        assert np.array_equal(ram.graph.label_array(), mapped.graph.label_array())
        assert ram.target_pairs == mapped.target_pairs
        assert ram.target_counts == mapped.target_counts

    def test_shm_mode_keeps_arrays_in_ram(self):
        dataset = load_dataset(
            "facebook", seed=11, scale=0.1, representation="csr", graph_store="shm"
        )
        # Publication happens at the n_jobs plane; the dataset itself is RAM.
        assert dataset.graph.store == "ram"

    def test_external_store_requires_csr_representation(self):
        with pytest.raises(DatasetError, match="representation='csr'"):
            load_dataset("facebook", seed=1, scale=0.1, graph_store="mmap")

    def test_unknown_store_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown graph store"):
            load_dataset(
                "facebook", seed=1, scale=0.1, representation="csr", graph_store="tape"
            )
