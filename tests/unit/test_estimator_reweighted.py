"""Unit tests for the re-weighted (importance sampling) estimator (Equation 19)."""

import pytest

from repro.core.estimators import NodeReweightedEstimator
from repro.core.samplers.base import NodeSample, NodeSampleSet
from repro.exceptions import EstimationError, InsufficientSamplesError


def node_set(entries, num_nodes, num_edges=100):
    samples = [
        NodeSample(
            node=i, degree=d, has_target_label=t > 0, incident_target_edges=t, step_index=i
        )
        for i, (d, t) in enumerate(entries)
    ]
    return NodeSampleSet(samples=samples, num_edges=num_edges, num_nodes=num_nodes)


class TestReweighted:
    def test_formula(self):
        # samples (deg, T): (2, 1), (4, 2) and |V| = 20
        # F̂ = |V| * (1/2 + 2/4) / (2 * (1/2 + 1/4)) = 20 * 1 / 1.5 = 13.33
        result = NodeReweightedEstimator().estimate(node_set([(2, 1), (4, 2)], num_nodes=20))
        assert result.estimate == pytest.approx(20 * 1.0 / 1.5)
        assert result.estimator == "NeighborExploration-RW"

    def test_zero_when_no_targets(self):
        result = NodeReweightedEstimator().estimate(node_set([(2, 0), (4, 0)], num_nodes=20))
        assert result.estimate == 0.0

    def test_does_not_need_num_edges(self):
        result = NodeReweightedEstimator().estimate(
            node_set([(2, 1)], num_nodes=20, num_edges=0)
        )
        assert result.estimate > 0

    def test_regular_degree_sample_reduces_to_mean(self):
        # When every sampled degree is equal the ratio collapses to the plain
        # mean of T(u), so the estimate is |V| * mean(T) / 2.
        result = NodeReweightedEstimator().estimate(
            node_set([(4, 2), (4, 0), (4, 2)], num_nodes=30)
        )
        mean_t = (2 + 0 + 2) / 3
        assert result.estimate == pytest.approx(30 * mean_t / 2)

    def test_missing_num_nodes_raises(self):
        with pytest.raises(EstimationError):
            NodeReweightedEstimator().estimate(node_set([(2, 1)], num_nodes=0))

    def test_zero_degree_raises(self):
        with pytest.raises(EstimationError):
            NodeReweightedEstimator().estimate(node_set([(0, 0)], num_nodes=10))

    def test_empty_raises(self):
        with pytest.raises(InsufficientSamplesError):
            NodeReweightedEstimator().estimate(NodeSampleSet(num_edges=1, num_nodes=1))

    def test_details_expose_weights(self):
        result = NodeReweightedEstimator().estimate(node_set([(2, 1), (4, 2)], num_nodes=20))
        assert result.details["weighted_numerator"] == pytest.approx(1.0)
        assert result.details["weighted_denominator"] == pytest.approx(0.75)
