"""Unit tests for the CSR graph view and the vectorized walk backend.

Covers, on small graphs with exactly known structure:

* CSR construction fidelity (order-preserving adjacency, label masks,
  vectorized ``T(u)`` counts),
* same-seed **step-for-step** agreement between the exact-RNG CSR walk
  and the dict-based reference engine, for both supported kernels,
* same-seed sample-for-sample and charged-API-call agreement between
  the CSR samplers (``exact_rng=True``) and the reference samplers,
* the batched engine's structural invariants (valid transitions,
  non-backtracking property, degree-stationary accounting, budgets).
"""

import random

import numpy as np
import pytest

from repro.core.samplers import (
    NeighborExplorationSampler,
    NeighborSampleSampler,
    explore_nodes_csr,
    sample_edges_csr,
)
from repro.exceptions import (
    APIBudgetExceededError,
    ConfigurationError,
    NodeNotFoundError,
    WalkError,
)
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.batched import (
    BatchedWalkEngine,
    PageBudgetTracker,
    csr_walk,
    resolve_csr_kernel,
)
from repro.walks.engine import RandomWalk
from repro.walks.kernels import (
    MetropolisHastingsKernel,
    NonBacktrackingKernel,
    SimpleRandomWalkKernel,
)


class TestCSRGraphConstruction:
    def test_counts_match(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        assert csr.num_nodes == triangle_graph.num_nodes
        assert csr.num_edges == triangle_graph.num_edges
        assert len(csr) == 3

    def test_adjacency_preserves_neighbor_order(self, rare_label_osn):
        csr = CSRGraph.from_labeled_graph(rare_label_osn)
        for node in list(rare_label_osn.nodes())[:50]:
            index = csr.index_of(node)
            expected = [csr.index_of(v) for v in rare_label_osn.neighbors(node)]
            assert csr.neighbors(index).tolist() == expected
            assert csr.degree(index) == rare_label_osn.degree(node)

    def test_indptr_is_degree_cumsum(self, path_graph):
        csr = CSRGraph.from_labeled_graph(path_graph)
        degrees = [path_graph.degree(n) for n in path_graph.nodes()]
        assert csr.indptr.tolist() == [0] + list(np.cumsum(degrees))
        assert csr.degrees.tolist() == degrees

    def test_label_masks(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        mask_a = csr.label_mask("a")
        mask_b = csr.label_mask("b")
        for node in triangle_graph.nodes():
            index = csr.index_of(node)
            assert mask_a[index] == triangle_graph.has_label(node, "a")
            assert mask_b[index] == triangle_graph.has_label(node, "b")
        # masks are cached and read-only
        assert csr.label_mask("a") is mask_a
        assert not mask_a.flags.writeable

    def test_labels_of_roundtrip(self, star_graph):
        csr = CSRGraph.from_labeled_graph(star_graph)
        for node in star_graph.nodes():
            assert csr.labels_of(csr.index_of(node)) == star_graph.labels_of(node)

    def test_index_of_unknown_node_raises(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        with pytest.raises(NodeNotFoundError):
            csr.index_of("nope")

    def test_adopt_csr_rejects_foreign_graph(self, triangle_graph, star_graph):
        api = RestrictedGraphAPI(triangle_graph)
        with pytest.raises(ConfigurationError):
            api.adopt_csr(CSRGraph.from_labeled_graph(star_graph))
        own = CSRGraph.from_labeled_graph(triangle_graph)
        api.adopt_csr(own)
        assert api.to_csr() is own

    def test_target_incident_counts_match_reference(self, rare_label_osn):
        csr = CSRGraph.from_labeled_graph(rare_label_osn)
        labels = sorted(rare_label_osn.all_labels())[:2]
        t1, t2 = labels[0], labels[-1]
        counts = csr.target_incident_counts(t1, t2)
        for node in rare_label_osn.nodes():
            expected = rare_label_osn.target_edges_incident_to(node, t1, t2)
            assert counts[csr.index_of(node)] == expected

    def test_target_incident_counts_same_label(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        counts = csr.target_incident_counts(1, 1)
        for node in list(gender_osn.nodes())[:100]:
            expected = gender_osn.target_edges_incident_to(node, 1, 1)
            assert counts[csr.index_of(node)] == expected

    def test_target_incident_counts_node_with_both_labels(self):
        graph = LabeledGraph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.set_labels(0, ["x", "y"])
        graph.set_labels(1, ["x", "y"])
        graph.set_labels(2, ["x"])
        csr = CSRGraph.from_labeled_graph(graph)
        counts = csr.target_incident_counts("x", "y")
        for node in graph.nodes():
            assert counts[csr.index_of(node)] == graph.target_edges_incident_to(
                node, "x", "y"
            )


class TestKernelResolution:
    def test_names_and_instances(self):
        assert resolve_csr_kernel(None) == "simple"
        assert resolve_csr_kernel("simple") == "simple"
        assert resolve_csr_kernel("non_backtracking") == "non_backtracking"
        assert resolve_csr_kernel(SimpleRandomWalkKernel()) == "simple"
        assert resolve_csr_kernel(NonBacktrackingKernel()) == "non_backtracking"
        # The EX-* accept/reject kernels are vectorized now.
        assert resolve_csr_kernel("mhrw") == "mhrw"
        assert resolve_csr_kernel(MetropolisHastingsKernel()) == "mhrw"

    def test_unsupported_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_csr_kernel("metropolis")
        with pytest.raises(ConfigurationError):
            resolve_csr_kernel(object())


class TestStepForStepAgreement:
    """Same seed, same trajectory as the dict engine (exact-RNG mode)."""

    @pytest.mark.parametrize(
        "kernel_factory,kernel_name",
        [
            (SimpleRandomWalkKernel, "simple"),
            (NonBacktrackingKernel, "non_backtracking"),
        ],
    )
    def test_walk_matches_reference_engine(
        self, rare_label_osn, kernel_factory, kernel_name
    ):
        csr = CSRGraph.from_labeled_graph(rare_label_osn)
        start = next(iter(rare_label_osn.nodes()))
        for seed in (1, 7, 42):
            api = RestrictedGraphAPI(rare_label_osn)
            reference = RandomWalk(
                api, kernel_factory(), burn_in=0, rng=random.Random(seed)
            ).run(120, start_node=start)
            path = csr_walk(
                csr,
                120,
                csr.index_of(start),
                random.Random(seed),
                kernel_name,
                exact_rng=True,
            )
            assert [csr.node_ids[i] for i in path] == reference.nodes

    def test_neighbor_sample_sampler_matches(self, gender_osn):
        for seed in (3, 11):
            api_ref = RestrictedGraphAPI(gender_osn)
            reference = NeighborSampleSampler(
                api_ref, 1, 2, burn_in=15, rng=seed
            ).sample(80)
            api_csr = RestrictedGraphAPI(gender_osn)
            fast = NeighborSampleSampler(
                api_csr, 1, 2, burn_in=15, rng=seed, backend="csr", exact_rng=True
            ).sample(80)
            assert [(s.u, s.v, s.is_target) for s in fast] == [
                (s.u, s.v, s.is_target) for s in reference
            ]
            assert fast.api_calls_used == reference.api_calls_used
            assert api_csr.api_calls == api_ref.api_calls

    def test_neighbor_exploration_sampler_matches(self, gender_osn):
        for seed in (5, 23):
            api_ref = RestrictedGraphAPI(gender_osn)
            reference = NeighborExplorationSampler(
                api_ref, 1, 2, burn_in=15, rng=seed
            ).sample(80)
            api_csr = RestrictedGraphAPI(gender_osn)
            fast = NeighborExplorationSampler(
                api_csr, 1, 2, burn_in=15, rng=seed, backend="csr", exact_rng=True
            ).sample(80)
            assert [
                (s.node, s.degree, s.has_target_label, s.incident_target_edges)
                for s in fast
            ] == [
                (s.node, s.degree, s.has_target_label, s.incident_target_edges)
                for s in reference
            ]
            assert api_csr.api_calls == api_ref.api_calls

    def test_exploration_with_rare_labels_matches(self, rare_label_osn):
        labels = sorted(rare_label_osn.all_labels())
        t1, t2 = labels[0], labels[1]
        api_ref = RestrictedGraphAPI(rare_label_osn)
        reference = NeighborExplorationSampler(
            api_ref, t1, t2, burn_in=10, rng=2018
        ).sample(60)
        api_csr = RestrictedGraphAPI(rare_label_osn)
        fast = NeighborExplorationSampler(
            api_csr, t1, t2, burn_in=10, rng=2018, backend="csr", exact_rng=True
        ).sample(60)
        assert [s.incident_target_edges for s in fast] == [
            s.incident_target_edges for s in reference
        ]
        assert api_csr.api_calls == api_ref.api_calls


class TestCSRSamplerBehaviour:
    def test_fast_mode_is_deterministic_per_seed(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        one = sample_edges_csr(csr, 1, 2, 50, burn_in=5, rng=9)
        two = sample_edges_csr(csr, 1, 2, 50, burn_in=5, rng=9)
        assert [(s.u, s.v) for s in one] == [(s.u, s.v) for s in two]

    def test_sampled_edges_exist(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        samples = sample_edges_csr(csr, 1, 2, 100, rng=4)
        for sample in samples:
            assert gender_osn.has_edge(sample.u, sample.v)
            assert sample.is_target == gender_osn.is_target_edge(
                sample.u, sample.v, 1, 2
            )

    def test_explored_nodes_report_true_incident_counts(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        samples = explore_nodes_csr(csr, 1, 2, 100, rng=8)
        for sample in samples:
            assert sample.degree == gender_osn.degree(sample.node)
            if sample.has_target_label:
                assert sample.incident_target_edges == (
                    gender_osn.target_edges_incident_to(sample.node, 1, 2)
                )
            else:
                assert sample.incident_target_edges == 0

    def test_budget_exceeded_raises(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        with pytest.raises(APIBudgetExceededError):
            sample_edges_csr(csr, 1, 2, 200, rng=6, budget=10)

    def test_budget_respected_through_api_wrapper(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn, budget=15)
        sampler = NeighborSampleSampler(api, 1, 2, rng=6, backend="csr")
        with pytest.raises(APIBudgetExceededError) as excinfo:
            sampler.sample(200)
        # reference parity: the error and the counter report the
        # crossing attempt, exactly like APICallCounter.charge
        assert excinfo.value.budget == 15
        assert excinfo.value.used == 16
        assert api.api_calls == 16

    def test_repeat_samples_share_the_page_cache(self, gender_osn):
        # revisited pages are free across sample() calls on one wrapper,
        # matching the python backend's cache
        api_ref = RestrictedGraphAPI(gender_osn)
        api_csr = RestrictedGraphAPI(gender_osn)
        for seed in (4, 5):
            NeighborSampleSampler(api_ref, 1, 2, burn_in=10, rng=seed).sample(60)
            NeighborSampleSampler(
                api_csr, 1, 2, burn_in=10, rng=seed, backend="csr", exact_rng=True
            ).sample(60)
            assert api_csr.api_calls == api_ref.api_calls

    def test_python_downloads_are_free_for_csr(self, gender_osn):
        # pages fetched through the dict path are folded into the CSR
        # page mask, so a later csr run does not re-charge them
        api = RestrictedGraphAPI(gender_osn)
        start = next(iter(gender_osn.nodes()))
        NeighborSampleSampler(api, 1, 2, burn_in=5, rng=1).sample(
            40, start_node=start
        )
        before = api.api_calls
        NeighborSampleSampler(
            api, 1, 2, burn_in=5, rng=1, backend="csr", exact_rng=True
        ).sample(40, start_node=start)
        # identical seed + start: the walk revisits exactly the same
        # pages, all already downloaded
        assert api.api_calls == before

    def test_exhausted_budget_keeps_downloaded_pages(self, gender_osn):
        # reference contract: pages fetched before the crossing stay
        # readable from the wrapper's cache, free of charge
        api = RestrictedGraphAPI(gender_osn, budget=8)
        sampler = NeighborSampleSampler(api, 1, 2, rng=6, backend="csr")
        with pytest.raises(APIBudgetExceededError):
            sampler.sample(200)
        mask = api.downloaded_page_mask()
        assert int(mask.sum()) == 8
        node = api.to_csr().node_ids[int(np.flatnonzero(mask)[0])]
        assert api.neighbors(node) == gender_osn.neighbors(node)
        assert api.api_calls == 9  # unchanged: served from cache

    def test_csr_downloads_are_free_for_python_path(self, gender_osn):
        # the other interleaving: a csr crawl, then the dict path reads
        # one of its pages — a cache hit, not a new charge
        api = RestrictedGraphAPI(gender_osn)
        samples = NeighborSampleSampler(
            api, 1, 2, burn_in=5, rng=3, backend="csr"
        ).sample(40)
        before = api.api_calls
        visited = samples.samples[0].u
        assert api.neighbors(visited) == gender_osn.neighbors(visited)
        assert api.api_calls == before
        assert api.counter.cache_hits >= 1

    def test_cache_disabled_wrapper_rejected(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn, cache=False)
        sampler = NeighborSampleSampler(api, 1, 2, rng=1, backend="csr")
        with pytest.raises(ConfigurationError):
            sampler.sample(10)

    def test_unsupported_kernel_rejected_eagerly(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)

        class UnknownKernel(SimpleRandomWalkKernel):
            name = "no_such_kernel"

        with pytest.raises(ConfigurationError):
            NeighborSampleSampler(api, 1, 2, kernel=UnknownKernel(), backend="csr")
        # MH kernels are vectorizable now; construction must succeed.
        NeighborSampleSampler(
            api, 1, 2, kernel=MetropolisHastingsKernel(), backend="csr"
        )

    def test_independent_walks_not_supported(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        sampler = NeighborExplorationSampler(api, 1, 2, rng=1, backend="csr")
        with pytest.raises(ConfigurationError):
            sampler.sample(10, single_walk=False)

    def test_unknown_backend_rejected(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        with pytest.raises(ConfigurationError):
            NeighborSampleSampler(api, 1, 2, backend="gpu")

    def test_isolated_node_raises_walk_error(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)
        graph.add_node(3)  # isolated
        csr = CSRGraph.from_labeled_graph(graph)
        with pytest.raises(WalkError):
            csr_walk(csr, 10, csr.index_of(3), rng=0)


class TestBatchedWalkEngine:
    def test_shapes_and_validity(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        engine = BatchedWalkEngine(csr, rng=5)
        result = engine.run(16, 40, burn_in=8)
        assert result.nodes.shape == (16, 40)
        assert result.degrees.shape == (16, 40)
        assert result.num_walkers == 16
        assert result.num_steps == 40
        assert result.burn_in == 8
        # every recorded transition must be a real edge
        for walker in range(16):
            previous = int(result.tail_nodes[walker])
            for index in result.nodes[walker]:
                index = int(index)
                assert index in csr.neighbors(previous)
                previous = index

    def test_degrees_are_correct(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        result = BatchedWalkEngine(csr, rng=2).run(4, 25)
        assert np.array_equal(result.degrees, csr.degrees[result.nodes])

    def test_non_backtracking_property(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        engine = BatchedWalkEngine(csr, kernel="non_backtracking", rng=13)
        result = engine.run(8, 60)
        for walker in range(8):
            path = [int(result.start_nodes[walker])] + [
                int(i) for i in result.nodes[walker]
            ]
            for a, b, c in zip(path, path[1:], path[2:]):
                if csr.degree(b) > 1:
                    assert c != a, "walk backtracked at a non-dead-end"

    def test_deterministic_with_seed(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        one = BatchedWalkEngine(csr, rng=99).run(6, 30)
        two = BatchedWalkEngine(csr, rng=99).run(6, 30)
        assert np.array_equal(one.nodes, two.nodes)

    def test_explicit_start_nodes(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        result = BatchedWalkEngine(csr, rng=1).run(3, 10, start_nodes=[0, 1, 2])
        assert result.start_nodes.tolist() == [0, 1, 2]
        with pytest.raises(ConfigurationError):
            BatchedWalkEngine(csr, rng=1).run(2, 5, start_nodes=[0])
        with pytest.raises(ConfigurationError):
            BatchedWalkEngine(csr, rng=1).run(2, 5, start_nodes=[0, 99])

    def test_charged_calls_are_distinct_pages(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        result = BatchedWalkEngine(csr, rng=7).run(2, 50)
        # a long walk on a triangle touches every page exactly once
        assert result.charged_calls == 3

    def test_budget_exhaustion_mid_walk(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        engine = BatchedWalkEngine(csr, budget=20, rng=3)
        with pytest.raises(APIBudgetExceededError) as excinfo:
            engine.run(16, 200)
        # reference semantics: the counter stops at the crossing attempt
        assert excinfo.value.budget == 20
        assert excinfo.value.used == 21

    def test_zero_budget_raises_immediately(self, triangle_graph):
        csr = CSRGraph.from_labeled_graph(triangle_graph)
        engine = BatchedWalkEngine(csr, budget=0, rng=1)
        with pytest.raises(APIBudgetExceededError):
            engine.run(1, 1)

    def test_walk_result_conversion(self, gender_osn):
        csr = CSRGraph.from_labeled_graph(gender_osn)
        result = BatchedWalkEngine(csr, rng=21).run(3, 20, burn_in=4)
        converted = result.walk_result(1, csr)
        assert len(converted) == 20
        assert converted.burn_in == 4
        assert converted.nodes[0] in gender_osn
        for (u, v), node in zip(converted.traversed_edges(), converted.nodes):
            assert gender_osn.has_edge(u, v)
            assert v == node
        assert converted.degrees == [gender_osn.degree(n) for n in converted.nodes]


class TestPageBudgetTracker:
    def test_revisits_are_free(self):
        tracker = PageBudgetTracker(10, budget=3)
        tracker.charge_pages(np.array([1, 2]))
        tracker.charge_pages(np.array([1, 2, 1]))
        assert tracker.charged == 2
        tracker.charge_pages(np.array([3]))
        assert tracker.charged == 3
        with pytest.raises(APIBudgetExceededError):
            tracker.charge_pages(np.array([4]))

    def test_unbudgeted_counts_only(self):
        tracker = PageBudgetTracker(5)
        tracker.charge_pages(np.arange(5))
        assert tracker.charged == 5
