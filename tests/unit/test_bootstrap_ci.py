"""Unit tests for the bootstrap confidence interval helper."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.metrics import bootstrap_confidence_interval


class TestBootstrapCI:
    def test_interval_brackets_the_mean(self):
        estimates = [90.0, 100.0, 110.0, 95.0, 105.0]
        lower, upper = bootstrap_confidence_interval(estimates, seed=1)
        mean = sum(estimates) / len(estimates)
        assert lower <= mean <= upper

    def test_degenerate_sample_gives_point_interval(self):
        lower, upper = bootstrap_confidence_interval([42.0, 42.0, 42.0], seed=2)
        assert lower == upper == 42.0

    def test_wider_level_gives_wider_interval(self):
        estimates = [80.0, 90.0, 100.0, 110.0, 120.0, 95.0, 105.0]
        narrow = bootstrap_confidence_interval(estimates, level=0.5, seed=3)
        wide = bootstrap_confidence_interval(estimates, level=0.99, seed=3)
        assert (wide[1] - wide[0]) >= (narrow[1] - narrow[0])

    def test_deterministic_given_seed(self):
        estimates = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_confidence_interval(estimates, seed=4) == bootstrap_confidence_interval(
            estimates, seed=4
        )

    def test_interval_within_sample_range(self):
        estimates = [10.0, 20.0, 30.0]
        lower, upper = bootstrap_confidence_interval(estimates, seed=5)
        assert 10.0 <= lower <= upper <= 30.0

    def test_invalid_inputs(self):
        with pytest.raises(ExperimentError):
            bootstrap_confidence_interval([])
        with pytest.raises(ExperimentError):
            bootstrap_confidence_interval([1.0], level=1.5)
        with pytest.raises(ExperimentError):
            bootstrap_confidence_interval([1.0], resamples=0)
