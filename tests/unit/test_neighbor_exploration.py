"""Unit tests for the NeighborExploration sampling process (Algorithm 2)."""

import pytest

from repro.core.samplers import NeighborExplorationSampler
from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI


class TestNeighborExploration:
    def test_sample_count(self, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=10, rng=1)
        assert sampler.sample(40).k == 40

    def test_degrees_match_graph(self, gender_osn, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=10, rng=2)
        for sample in sampler.sample(60):
            assert sample.degree == gender_osn.degree(sample.node)

    def test_incident_counts_match_ground_truth(self, gender_osn, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=10, rng=3)
        for sample in sampler.sample(60):
            expected = gender_osn.target_edges_incident_to(sample.node, 1, 2)
            assert sample.incident_target_edges == expected

    def test_has_target_label_flag(self, gender_osn, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=10, rng=4)
        for sample in sampler.sample(60):
            labels = gender_osn.labels_of(sample.node)
            assert sample.has_target_label == (1 in labels or 2 in labels)

    def test_unlabeled_nodes_not_explored(self, rare_label_osn):
        """Nodes without a target label must report T(u) = 0 and no exploration."""
        api = RestrictedGraphAPI(rare_label_osn)
        # Use two labels that exist; most nodes carry neither.
        sampler = NeighborExplorationSampler(api, 3, 4, burn_in=10, rng=5)
        samples = sampler.sample(100)
        for sample in samples:
            if not sample.has_target_label:
                assert sample.incident_target_edges == 0
        # At least some nodes should be unlabeled for this rare pair.
        assert any(not sample.has_target_label for sample in samples)

    def test_prior_knowledge_and_api_calls(self, gender_osn, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=5, rng=6)
        samples = sampler.sample(10)
        assert samples.num_edges == gender_osn.num_edges
        assert samples.num_nodes == gender_osn.num_nodes
        assert samples.api_calls_used == gender_api.api_calls

    def test_reproducible_with_seed(self, gender_osn):
        runs = []
        for _ in range(2):
            sampler = NeighborExplorationSampler(
                RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10, rng=77
            )
            runs.append([s.node for s in sampler.sample(25)])
        assert runs[0] == runs[1]

    def test_invalid_k(self, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, rng=1)
        with pytest.raises(ConfigurationError):
            sampler.sample(-3)

    def test_independent_mode(self, gender_api):
        sampler = NeighborExplorationSampler(gender_api, 1, 2, burn_in=5, rng=9)
        samples = sampler.sample(5, single_walk=False)
        assert samples.k == 5

    def test_exploration_cost_reflected_in_api_calls(self, gender_osn):
        """Exploring labeled nodes costs extra neighbor-page downloads."""
        api_with_labels = RestrictedGraphAPI(gender_osn, cache=False)
        api_rare = RestrictedGraphAPI(gender_osn, cache=False)
        NeighborExplorationSampler(api_with_labels, 1, 2, burn_in=10, rng=10).sample(30)
        # Labels 98/99 exist on no node: no exploration ever happens.
        NeighborExplorationSampler(api_rare, 98, 99, burn_in=10, rng=10).sample(30)
        assert api_with_labels.api_calls > api_rare.api_calls
