"""Unit tests for the paper-table definitions and runner."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import (
    TABLE_DEFINITIONS,
    list_tables,
    run_paper_table,
)


class TestDefinitions:
    def test_tables_4_to_17_defined(self):
        assert list_tables() == list(range(4, 18))

    def test_every_definition_names_a_registered_dataset(self):
        from repro.datasets.registry import dataset_names

        names = set(dataset_names())
        for definition in TABLE_DEFINITIONS.values():
            assert definition.dataset in names
            assert 0 <= definition.target_pair_index < 4

    def test_paper_reference_values_recorded(self):
        table4 = TABLE_DEFINITIONS[4]
        assert table4.paper_best_algorithm == "NeighborSample-HT"
        assert table4.paper_best_nrmse == pytest.approx(0.104)
        table17 = TABLE_DEFINITIONS[17]
        assert table17.paper_best_algorithm == "NeighborExploration-RW"

    def test_paper_percentages_span_orders_of_magnitude(self):
        percentages = [d.paper_percentage for d in TABLE_DEFINITIONS.values()]
        assert min(percentages) == pytest.approx(0.001)
        assert max(percentages) > 10


class TestRunPaperTable:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(
            dataset="facebook",
            sample_fractions=(0.02, 0.05),
            repetitions=3,
            scale=0.1,
            seed=11,
        )
        return run_paper_table(4, config)

    def test_table_structure(self, result):
        assert result.definition.table_number == 4
        assert result.table.dataset == "Facebook"
        assert len(result.table.sample_fractions) == 2
        assert len(result.table.cells) == 10

    def test_reproduced_and_paper_best(self, result):
        reproduced_name, reproduced_value = result.reproduced_best()
        paper_name, paper_value = result.paper_best()
        assert reproduced_value >= 0
        assert paper_name == "NeighborSample-HT"
        assert paper_value == pytest.approx(0.104)
        assert reproduced_name in result.table.cells

    def test_agreement_keys(self, result):
        agreement = result.agreement()
        assert set(agreement) == {"family_match", "proposed_wins"}

    def test_unknown_table_raises(self):
        with pytest.raises(ExperimentError):
            run_paper_table(3)

    def test_config_dataset_is_overridden_by_definition(self, result):
        # The config passed in named "facebook", and the definition for Table 4
        # also names facebook; what matters is that run_paper_table pins the
        # dataset and pair index to the definition's values.
        assert result.config.dataset == "facebook"
        assert result.config.target_pair_index == 0
