"""Failure policies in isolation: backoff, breaker FSM, deadlines, admission.

Everything time-shaped is driven through injected clocks, sleeps and
seeded RNGs — no test here waits on the wall clock, and every schedule
asserted is exact, not approximate.
"""

import pytest

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ServiceOverloadedError,
    StoreAttachError,
)
from repro.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    Retry,
    is_retryable,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryability:
    def test_store_attach_errors_opt_in(self):
        assert is_retryable(StoreAttachError("segment gone"))

    def test_deliberate_rejections_opt_out(self):
        assert not is_retryable(DeadlineExceededError("late", deadline_seconds=1.0))
        assert not is_retryable(CircuitOpenError("NeighborSample-HH", 1.0))
        assert not is_retryable(ServiceOverloadedError(depth=4, limit=4, retry_after=0.1))

    def test_arbitrary_exceptions_are_not_retryable(self):
        assert not is_retryable(ValueError("nope"))


class TestRetryBackoff:
    def test_seeded_schedule_is_reproducible(self):
        first = Retry(attempts=5, seed=11).schedule()
        second = Retry(attempts=5, seed=11).schedule()
        assert first == second
        assert len(first) == 4

    def test_schedule_respects_base_and_cap(self):
        schedule = Retry(
            attempts=8, base_seconds=0.05, cap_seconds=0.4, seed=2
        ).schedule()
        assert all(0.05 <= sleep <= 0.4 for sleep in schedule)

    def test_call_sleeps_exactly_the_seeded_schedule(self):
        slept = []
        attempts = []

        def flaky():
            attempts.append(True)
            if len(attempts) < 3:
                raise StoreAttachError("publisher mid-rewrite")
            return "attached"

        policy = Retry(attempts=3, seed=11, sleep=slept.append)
        assert policy.call(flaky) == "attached"
        assert len(attempts) == 3
        assert slept == Retry(attempts=3, seed=11).schedule()

    def test_non_retryable_errors_propagate_on_first_throw(self):
        slept = []
        calls = []

        def broken():
            calls.append(True)
            raise ValueError("a bug, not a blip")

        with pytest.raises(ValueError):
            Retry(attempts=5, sleep=slept.append).call(broken)
        assert len(calls) == 1 and slept == []

    def test_exhausted_attempts_reraise_the_typed_error(self):
        slept = []
        calls = []

        def always_down():
            calls.append(True)
            raise StoreAttachError("segment gone", location="psm_x")

        with pytest.raises(StoreAttachError) as excinfo:
            Retry(attempts=3, sleep=slept.append).call(always_down)
        assert excinfo.value.location == "psm_x"
        assert len(calls) == 3 and len(slept) == 2

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            Retry(attempts=0)
        with pytest.raises(ConfigurationError):
            Retry(base_seconds=0.5, cap_seconds=0.1)


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, cooldown=5.0):
        return CircuitBreaker(threshold, cooldown, clock=clock)

    def test_starts_closed_and_admits(self):
        breaker = self._breaker(FakeClock())
        assert breaker.state == STATE_CLOSED
        assert breaker.admit()
        assert breaker.retry_after() == 0.0

    def test_success_resets_the_consecutive_counter(self):
        breaker = self._breaker(FakeClock(), threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # never 3 *consecutive*

    def test_threshold_consecutive_failures_trip_it_open(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.admit()
        assert breaker.trips == 1
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(2.0)
        assert breaker.retry_after() == pytest.approx(3.0)

    def test_cooldown_half_opens_and_admits_one_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.admit()       # the probe
        assert not breaker.admit()   # concurrent callers rejected
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.admit()

    def test_failed_probe_reopens_for_a_full_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_seconds=-1.0)


class TestBreakerBoard:
    def test_one_breaker_per_algorithm_created_lazily(self):
        board = BreakerBoard(threshold=2, cooldown_seconds=1.0)
        assert board.get("NeighborSample-HH") is None
        breaker = board.breaker("NeighborSample-HH")
        assert board.breaker("NeighborSample-HH") is breaker
        assert board.get("NeighborSample-HH") is breaker

    def test_open_algorithms_and_snapshot(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_seconds=9.0, clock=clock)
        board.breaker("Healthy")
        board.breaker("Broken").record_failure()
        assert board.open_algorithms() == ["Broken"]
        snapshot = board.snapshot()
        assert snapshot["Broken"] == {"state": STATE_OPEN, "trips": 1}
        assert snapshot["Healthy"] == {"state": STATE_CLOSED, "trips": 0}


class TestDeadline:
    def test_remaining_and_expiry_follow_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_the_typed_504(self):
        clock = FakeClock()
        deadline = Deadline(0.25, clock=clock)
        deadline.check()  # fine while live
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("estimate query")
        assert excinfo.value.deadline_seconds == 0.25
        assert "250 ms" in str(excinfo.value)

    def test_millisecond_constructors(self):
        clock = FakeClock()
        assert Deadline.after_ms(500, clock=clock).budget_seconds == 0.5
        assert Deadline.from_optional_ms(None) is None
        assert Deadline.from_optional_ms(100, clock=clock).budget_seconds == 0.1

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)


class TestAdmissionController:
    def test_slots_acquire_and_release(self):
        admission = AdmissionController(limit=2)
        assert admission.try_acquire() and admission.try_acquire()
        assert admission.depth == 2
        assert not admission.try_acquire()
        assert admission.rejections == 1
        admission.release()
        assert admission.try_acquire()

    def test_acquire_raises_the_typed_429(self):
        admission = AdmissionController(limit=1, retry_after_seconds=0.25)
        admission.acquire()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            admission.acquire()
        assert excinfo.value.limit == 1
        assert excinfo.value.retry_after == 0.25

    def test_unpaired_release_is_a_bug(self):
        with pytest.raises(AssertionError):
            AdmissionController(limit=1).release()

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(limit=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(limit=1, retry_after_seconds=-1.0)
