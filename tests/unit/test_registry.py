"""Unit tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    clear_dataset_cache,
    dataset_names,
    load_dataset,
    select_target_pairs,
)
from repro.exceptions import DatasetError
from repro.graph.cleaning import is_connected
from repro.graph.statistics import count_target_edges


class TestSpecs:
    def test_five_datasets_in_paper_order(self):
        assert dataset_names() == ["facebook", "googleplus", "pokec", "orkut", "livejournal"]

    def test_paper_scale_recorded(self):
        assert DATASET_SPECS["facebook"].paper_num_nodes == 4_000
        assert DATASET_SPECS["livejournal"].paper_num_edges == 42_800_000

    def test_label_models(self):
        assert DATASET_SPECS["facebook"].label_model == "gender"
        assert DATASET_SPECS["pokec"].label_model == "location"
        assert DATASET_SPECS["orkut"].label_model == "degree"


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("friendster")

    def test_facebook_like(self):
        dataset = load_dataset("facebook", seed=1, scale=0.1)
        assert is_connected(dataset.graph)
        assert dataset.target_pairs == [(1, 2)]
        pair = dataset.target_pairs[0]
        assert dataset.target_counts[pair] == count_target_edges(dataset.graph, *pair)
        # Gender labels: the target edges are abundant.
        assert dataset.fraction(pair) > 0.2

    def test_pokec_like_has_rare_pairs(self):
        dataset = load_dataset("pokec", seed=1, scale=0.1)
        assert len(dataset.target_pairs) == 4
        fractions = [dataset.fraction(pair) for pair in dataset.target_pairs]
        # The quartile selection must span at least an order of magnitude.
        assert min(fractions) < max(fractions) / 5
        assert all(count > 0 for count in dataset.target_counts.values())

    def test_degree_label_datasets(self):
        for name in ("orkut", "livejournal"):
            dataset = load_dataset(name, seed=1, scale=0.05)
            assert len(dataset.target_pairs) == 4
            assert all(count >= 20 for count in dataset.target_counts.values())

    def test_cache_returns_same_object(self):
        first = load_dataset("facebook", seed=3, scale=0.1)
        second = load_dataset("facebook", seed=3, scale=0.1)
        assert first is second

    def test_cache_bypass(self):
        first = load_dataset("facebook", seed=4, scale=0.1, use_cache=False)
        second = load_dataset("facebook", seed=4, scale=0.1, use_cache=False)
        assert first is not second
        assert set(first.graph.edges()) == set(second.graph.edges())

    def test_clear_cache(self):
        first = load_dataset("facebook", seed=5, scale=0.1)
        clear_dataset_cache()
        second = load_dataset("facebook", seed=5, scale=0.1)
        assert first is not second

    def test_scale_changes_size(self):
        small = load_dataset("facebook", seed=6, scale=0.05, use_cache=False)
        large = load_dataset("facebook", seed=6, scale=0.2, use_cache=False)
        assert large.graph.num_nodes > small.graph.num_nodes

    def test_summary(self):
        dataset = load_dataset("facebook", seed=1, scale=0.1)
        summary = dataset.summary()
        assert summary.name == "Facebook"
        assert summary.num_nodes == dataset.graph.num_nodes

    def test_invalid_scale(self):
        with pytest.raises(Exception):
            load_dataset("facebook", scale=0.0)


class TestSelectTargetPairs:
    def test_spans_frequency_range(self, rare_label_osn):
        pairs = select_target_pairs(rare_label_osn, count=4, min_target_edges=5)
        assert len(pairs) == 4
        counts = [count_target_edges(rare_label_osn, *pair) for pair in pairs]
        assert counts == sorted(counts)
        assert all(count >= 5 for count in counts)

    def test_excludes_same_label_pairs_by_default(self, rare_label_osn):
        pairs = select_target_pairs(rare_label_osn, count=4, min_target_edges=5)
        assert all(t1 != t2 for t1, t2 in pairs)

    def test_no_qualifying_pairs_raises(self, triangle_graph):
        with pytest.raises(DatasetError):
            select_target_pairs(triangle_graph, count=2, min_target_edges=100)

    def test_fewer_pairs_than_requested(self, triangle_graph):
        pairs = select_target_pairs(triangle_graph, count=10, min_target_edges=1)
        assert pairs == [("a", "b")]
