"""Unit tests for the SNAP-style loaders and the TSV graph format."""

import gzip

import pytest

from repro.exceptions import DatasetError
from repro.graph.io import (
    iter_edge_list,
    load_edge_list,
    load_labeled_graph,
    load_node_labels,
    load_snap_dataset,
    save_labeled_graph,
)
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text(
        "# a SNAP-style comment line\n"
        "1 2\n"
        "2 3\n"
        "3 1\n"
        "3 3\n"      # self-loop, should be dropped by the loader
        "2 1\n"      # duplicate (reversed), should be dropped
        "7 8\n"      # small second component, dropped when keeping the LCC
        "\n"
    )
    return path


@pytest.fixture
def label_file(tmp_path):
    path = tmp_path / "labels.txt"
    path.write_text("# node label\n1 10\n2 20 extra\n3 30\n")
    return path


class TestEdgeList:
    def test_iter_edge_list(self, edge_file):
        edges = list(iter_edge_list(edge_file))
        assert (1, 2) in edges
        assert len(edges) == 6

    def test_load_edge_list_cleans(self, edge_file):
        graph = load_edge_list(edge_file)
        assert set(graph.nodes()) == {1, 2, 3}
        assert graph.num_edges == 3

    def test_load_edge_list_keep_all_components(self, edge_file):
        graph = load_edge_list(edge_file, keep_largest_component=False)
        assert set(graph.nodes()) == {1, 2, 3, 7, 8}

    def test_gzip_support(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1 2\n2 3\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            list(iter_edge_list(tmp_path / "missing.txt"))

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            list(iter_edge_list(path))

    def test_non_integer_ids_raise(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            list(iter_edge_list(path))


class TestNodeLabels:
    def test_load_node_labels(self, label_file):
        labels = load_node_labels(label_file)
        assert labels[1] == [10]
        assert labels[2] == [20, "extra"]

    def test_malformed_label_line_raises(self, tmp_path):
        path = tmp_path / "bad_labels.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            load_node_labels(path)

    def test_snap_dataset_combined(self, edge_file, label_file):
        graph = load_snap_dataset(edge_file, label_file)
        assert graph.labels_of(1) == frozenset({10})
        assert graph.labels_of(2) == frozenset({20, "extra"})


class TestTSVRoundTrip:
    def test_round_trip(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.tsv"
        save_labeled_graph(triangle_graph, path)
        loaded = load_labeled_graph(path)
        assert loaded.num_nodes == triangle_graph.num_nodes
        assert loaded.num_edges == triangle_graph.num_edges
        assert loaded.labels_of(3) == frozenset({"b"})

    def test_round_trip_integer_labels(self, tmp_path):
        graph = LabeledGraph.from_edges([(1, 2)], {1: [5], 2: [7]})
        path = tmp_path / "graph.tsv"
        save_labeled_graph(graph, path)
        loaded = load_labeled_graph(path)
        assert loaded.labels_of(1) == frozenset({5})

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("X\t1\t2\n")
        with pytest.raises(DatasetError):
            load_labeled_graph(path)

    def test_malformed_edge_record_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("E\t1\n")
        with pytest.raises(DatasetError):
            load_labeled_graph(path)
