"""Prefix-reuse sweep engine: exact-layer contracts (fast tier).

The statistical layer (KS equivalence of ``reuse="prefix"`` vs
``reuse="none"`` estimates) lives in
``tests/integration/test_prefix_equivalence.py``; here the
deterministic properties are pinned: a prefix *is* the same walk
truncated, the max-budget column reproduces a fresh fleet bit for bit
from the same seed, and the ledgers stay monotone in the budget.
"""

import numpy as np
import pytest

from repro.core.samplers.csr_backend import (
    classify_edge_fleet,
    classify_node_fleet,
    run_fleet_walk,
    validate_reuse,
)
from repro.exceptions import ConfigurationError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    compare_algorithms,
    run_trials,
    run_trials_prefix,
)
from repro.experiments.sweeps import frequency_sweep
from repro.graph.csr import csr_view

BURN_IN = 15


@pytest.fixture(scope="module")
def suite(gender_osn):
    return build_algorithm_suite(gender_osn, include_baselines=False)


class TestFleetPrefix:
    def test_prefix_is_a_view_of_the_same_walk(self, gender_osn):
        csr = csr_view(gender_osn)
        fleet = run_fleet_walk(csr, 60, 8, BURN_IN, np.random.default_rng(1), "simple")
        short = fleet.prefix(25)
        assert short.burn_in == fleet.burn_in
        assert short.num_steps == 25
        assert np.array_equal(
            short.trajectories, fleet.trajectories[:, : BURN_IN + 26]
        )
        assert short.trajectories.base is fleet.trajectories  # no copy

    def test_full_length_prefix_is_self(self, gender_osn):
        csr = csr_view(gender_osn)
        fleet = run_fleet_walk(csr, 30, 4, 0, np.random.default_rng(2), "simple")
        assert fleet.prefix(30) is fleet

    def test_prefix_ledger_matches_truncated_run(self, gender_osn):
        csr = csr_view(gender_osn)
        rng_state = np.random.default_rng(3)
        fleet = run_fleet_walk(csr, 50, 6, BURN_IN, rng_state, "simple")
        short = fleet.prefix(20)
        # same per-walker distinct counts as recomputing from scratch
        expected = [
            len(set(row.tolist())) for row in short.trajectories
        ]
        assert short.charged_calls().tolist() == expected

    def test_overlong_prefix_rejected(self, gender_osn):
        csr = csr_view(gender_osn)
        fleet = run_fleet_walk(csr, 10, 2, 0, np.random.default_rng(4), "simple")
        with pytest.raises(ConfigurationError):
            fleet.prefix(11)


class TestRunTrialsPrefix:
    def test_max_column_matches_fresh_fleet_bit_for_bit(self, gender_osn, suite):
        runner = suite["NeighborSample-HH"]
        row = run_trials_prefix(
            gender_osn, 1, 2, runner, "NeighborSample-HH",
            [10, 25, 60], 12, BURN_IN, seed=99,
        )
        fresh = run_trials(
            gender_osn, 1, 2, runner, "NeighborSample-HH",
            60, 12, BURN_IN, seed=99, execution="fleet",
        )
        assert row[2].estimates == fresh.estimates
        assert row[2].api_calls == fresh.api_calls

    @pytest.mark.parametrize(
        "algorithm", ["NeighborSample-HT", "NeighborExploration-HH"]
    )
    def test_ledgers_monotone_in_budget(self, gender_osn, suite, algorithm):
        row = run_trials_prefix(
            gender_osn, 1, 2, suite[algorithm], algorithm,
            [5, 20, 50], 10, BURN_IN, seed=5,
        )
        per_trial = np.array([outcome.api_calls for outcome in row])
        assert (np.diff(per_trial, axis=0) >= 0).all()
        assert [outcome.sample_size for outcome in row] == [5, 20, 50]

    def test_classification_agrees_with_prefix_classification(self, gender_osn):
        csr = csr_view(gender_osn)
        fleet = run_fleet_walk(csr, 40, 5, BURN_IN, np.random.default_rng(6), "simple")
        full = classify_edge_fleet(csr, fleet, 1, 2)
        short = classify_edge_fleet(csr, fleet.prefix(15), 1, 2)
        assert np.array_equal(short.sources, full.sources[:, :15])
        assert np.array_equal(short.is_target, full.is_target[:, :15])
        node_full = classify_node_fleet(csr, fleet, 1, 2)
        node_short = classify_node_fleet(csr, fleet.prefix(15), 1, 2)
        assert np.array_equal(node_short.nodes, node_full.nodes[:, :15])
        assert np.array_equal(
            node_short.incident_target_edges, node_full.incident_target_edges[:, :15]
        )

    def test_rejects_non_proposed_runner(self, gender_osn):
        def handwritten(api, t1, t2, k, burn_in, rng):  # pragma: no cover
            raise AssertionError("never called")

        with pytest.raises(ConfigurationError):
            run_trials_prefix(
                gender_osn, 1, 2, handwritten, "custom", [10], 5, 0, seed=1
            )

    def test_rejects_empty_sample_sizes(self, gender_osn, suite):
        with pytest.raises(ConfigurationError):
            run_trials_prefix(
                gender_osn, 1, 2, suite["NeighborSample-HH"], "NeighborSample-HH",
                [], 5, 0, seed=1,
            )


class TestHarnessWiring:
    def test_validate_reuse(self):
        assert validate_reuse("none") == "none"
        assert validate_reuse("prefix") == "prefix"
        with pytest.raises(ConfigurationError):
            validate_reuse("suffix")

    def test_compare_algorithms_prefix_produces_full_table(self, gender_osn, suite):
        table = compare_algorithms(
            gender_osn, 1, 2, [0.01, 0.03], 6,
            algorithms=suite, burn_in=BURN_IN, seed=3, reuse="prefix",
        )
        for name in suite:
            assert len(table.cells[name]) == 2
            for outcome in table.cells[name]:
                assert outcome.repetitions == 6

    def test_compare_algorithms_prefix_keeps_baselines(self, gender_osn):
        suite = build_algorithm_suite(gender_osn, algorithms=(
            "NeighborSample-HH", "EX-RW",
        ))
        table = compare_algorithms(
            gender_osn, 1, 2, [0.02], 3,
            algorithms=suite, burn_in=5, seed=3, reuse="prefix",
        )
        assert set(table.cells) == {"NeighborSample-HH", "EX-RW"}

    def test_frequency_sweep_prefix_covers_all_pairs(self, rare_label_osn):
        from repro.datasets.registry import select_target_pairs

        pairs = select_target_pairs(rare_label_osn, count=3)
        points = frequency_sweep(
            rare_label_osn, pairs, budget_fraction=0.03, repetitions=5,
            burn_in=BURN_IN, seed=4, reuse="prefix",
        )
        assert len(points) == 3
        for point in points:
            assert set(point.nrmse_by_algorithm) == {
                "NeighborSample-HH", "NeighborSample-HT",
                "NeighborExploration-HH", "NeighborExploration-HT",
                "NeighborExploration-RW",
            }

    def test_progress_reports_every_cell_once(self, gender_osn, suite):
        seen = []
        compare_algorithms(
            gender_osn, 1, 2, [0.01, 0.02], 4,
            algorithms=suite, burn_in=5, seed=6, reuse="prefix",
            progress=lambda name, size, fraction: seen.append((name, size, fraction)),
        )
        assert len(seen) == len(suite) * 2
        assert seen[-1][2] == pytest.approx(1.0)


class TestConfigWiring:
    def test_reuse_field_validated(self):
        config = ExperimentConfig(dataset="facebook", reuse="prefix")
        assert config.reuse == "prefix"
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", reuse="suffix")

    def test_csr_representation_needs_vectorized_path(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", representation="csr")
        assert ExperimentConfig(
            dataset="facebook", representation="csr", execution="fleet"
        ).representation == "csr"
        assert ExperimentConfig(
            dataset="facebook", representation="csr", reuse="prefix"
        ).reuse == "prefix"

    def test_sequential_csr_graph_raises_clearly(self, gender_osn, suite):
        csr = csr_view(gender_osn)
        with pytest.raises(ConfigurationError):
            run_trials(
                csr, 1, 2, suite["NeighborSample-HH"], "NeighborSample-HH",
                10, 3, 5, seed=1, execution="sequential",
            )
