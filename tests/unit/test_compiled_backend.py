"""Differential suite for the compiled (numba-njit) fleet engine.

The contract under test: ``engine="compiled"`` is **bit-identical** to
the numpy engine — same trajectories, same proposal probes, same
distinct-page ledgers, same budget-crossing behavior — from the same
seed, for every vectorizable kernel, at any fleet width.

The container running the fast tier may not have numba; that is the
point.  ``force_compiled`` flips the availability flag so the engines
dispatch to the *un-jitted* kernels — the very same Python code numba
compiles — which keeps the parity suite meaningful on both CI legs.
Tests that need the actual JIT carry ``@pytest.mark.requires_numba``.
"""

import numpy as np
import pytest

import repro.walks.compiled as compiled_module
from repro.exceptions import (
    APIBudgetExceededError,
    ConfigurationError,
    WalkError,
)
from repro.graph.csr import csr_view
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.batched import BatchedWalkEngine, KernelSpec
from repro.walks.compiled import (
    CompiledFallbackWarning,
    has_accept_draw,
    numba_available,
    resolve_engine,
)
from repro.walks.line_batched import BatchedLineWalkEngine

STEPS = 40
BURN_IN = 9
WIDTHS = (1, 7, 32)


@pytest.fixture
def force_compiled(monkeypatch):
    """Make ``resolve_engine("compiled")`` return "compiled" without numba.

    The kernels then run as plain Python (bit-identical by design); when
    numba *is* installed this is a no-op and the JIT'd kernels run.
    """
    monkeypatch.setattr(compiled_module, "_NUMBA_AVAILABLE", True)


@pytest.fixture(scope="module")
def walk_csr():
    """A power-law graph plus a pendant chain.

    The pendant (degree-1) node exercises the non-backtracking dead-end
    branch and gives the swap-with-last exclusion draw a degree spread
    to chew on.
    """
    from repro.datasets.synthetic import powerlaw_cluster_osn

    graph = powerlaw_cluster_osn(220, 3, 0.3, rng=17)
    graph.add_edge(0, 220)  # pendant: degree-1 dead end
    graph.add_edge(220, 221)
    return csr_view(graph)


def _node_specs(csr):
    d_max = float(csr.degrees.max())
    return [
        KernelSpec("simple"),
        KernelSpec("non_backtracking"),
        KernelSpec("mhrw"),
        KernelSpec("rcmh", alpha=0.0),
        KernelSpec("rcmh", alpha=0.2),
        KernelSpec("rcmh", alpha=0.5),
        KernelSpec("mdrw", max_degree=d_max),
        KernelSpec("gmd", max_degree=d_max, delta=0.5),
    ]


def _line_specs(csr):
    # Line-graph degree of edge (u, v) is d(u) + d(v) - 2.
    degrees = csr.degrees
    line_max = 0
    for u in range(csr.num_nodes):
        row = csr.indices[csr.indptr[u] : csr.indptr[u + 1]]
        if row.size:
            line_max = max(line_max, int(degrees[u] + degrees[row].max() - 2))
    return [
        KernelSpec("simple"),
        KernelSpec("mhrw"),
        KernelSpec("rcmh", alpha=0.0),
        KernelSpec("rcmh", alpha=0.2),
        KernelSpec("rcmh", alpha=0.5),
        KernelSpec("mdrw", max_degree=float(line_max)),
        KernelSpec("gmd", max_degree=float(line_max), delta=0.5),
    ]


# ----------------------------------------------------------------------
# engine resolution and fallback
# ----------------------------------------------------------------------
class TestEngineResolution:
    def test_default_and_none_resolve_to_numpy(self):
        assert resolve_engine(None) == "numpy"
        assert resolve_engine("numpy") == "numpy"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("cuda")

    def test_compiled_resolves_when_available(self, force_compiled):
        assert resolve_engine("compiled") == "compiled"

    def test_fallback_warns_and_returns_numpy(self, monkeypatch, walk_csr):
        monkeypatch.setattr(compiled_module, "_NUMBA_AVAILABLE", False)
        with pytest.warns(CompiledFallbackWarning):
            engine = BatchedWalkEngine(walk_csr, rng=0, engine="compiled")
        assert engine.engine == "numpy"
        # ...and the fallback engine is the numpy engine, bit for bit.
        fleet = engine.run_fleet(4, 20, burn_in=5)
        reference = BatchedWalkEngine(walk_csr, rng=0).run_fleet(4, 20, burn_in=5)
        assert np.array_equal(fleet.trajectories, reference.trajectories)

    def test_fallback_on_line_engine_too(self, monkeypatch, walk_csr):
        monkeypatch.setattr(compiled_module, "_NUMBA_AVAILABLE", False)
        with pytest.warns(CompiledFallbackWarning):
            engine = BatchedLineWalkEngine(walk_csr, rng=0, engine="compiled")
        assert engine.engine == "numpy"

    def test_has_accept_draw_table(self):
        assert not has_accept_draw(KernelSpec("simple"))
        assert not has_accept_draw(KernelSpec("non_backtracking"))
        assert not has_accept_draw(KernelSpec("rcmh", alpha=0.0))
        assert has_accept_draw(KernelSpec("rcmh", alpha=0.2))
        assert has_accept_draw(KernelSpec("mhrw"))
        assert has_accept_draw(KernelSpec("mdrw", max_degree=8.0))
        assert has_accept_draw(KernelSpec("gmd", max_degree=8.0))


# ----------------------------------------------------------------------
# node-fleet bit parity
# ----------------------------------------------------------------------
@pytest.mark.usefixtures("force_compiled")
class TestNodeFleetParity:
    def _pair(self, csr, spec, width, seed):
        fleets = {}
        for engine in ("numpy", "compiled"):
            fleets[engine] = BatchedWalkEngine(
                csr, kernel=spec, rng=seed, engine=engine
            ).run_fleet(width, STEPS, burn_in=BURN_IN)
        return fleets["numpy"], fleets["compiled"]

    @pytest.mark.parametrize("width", WIDTHS)
    def test_trajectories_probes_and_ledgers(self, walk_csr, width):
        for spec in _node_specs(walk_csr):
            reference, compiled = self._pair(walk_csr, spec, width, seed=3)
            assert np.array_equal(
                reference.trajectories, compiled.trajectories
            ), spec
            if reference.probed is None:
                assert compiled.probed is None, spec
            else:
                assert np.array_equal(reference.probed, compiled.probed), spec
            assert np.array_equal(
                reference.charged_calls(), compiled.charged_calls()
            ), spec

    def test_run_matches_shared_tracker_semantics(self, walk_csr):
        """run(): shared page cache, interleaved probe charges replayed."""
        for spec in _node_specs(walk_csr):
            results = {}
            for engine in ("numpy", "compiled"):
                results[engine] = BatchedWalkEngine(
                    walk_csr, kernel=spec, rng=5, engine=engine
                ).run(8, STEPS, burn_in=BURN_IN)
            reference, compiled = results["numpy"], results["compiled"]
            assert np.array_equal(reference.nodes, compiled.nodes), spec
            assert np.array_equal(reference.degrees, compiled.degrees), spec
            assert np.array_equal(reference.start_nodes, compiled.start_nodes)
            assert np.array_equal(reference.tail_nodes, compiled.tail_nodes)
            assert reference.charged_calls == compiled.charged_calls, spec

    def test_prefix_slices_bit_identical(self, walk_csr):
        """FleetWalkResult.prefix of a compiled fleet == numpy prefixes."""
        spec = KernelSpec("mhrw")
        reference, compiled = self._pair(walk_csr, spec, width=9, seed=11)
        for num_steps in (1, STEPS // 2, STEPS):
            ref_prefix = reference.prefix(num_steps)
            cmp_prefix = compiled.prefix(num_steps)
            assert np.array_equal(ref_prefix.trajectories, cmp_prefix.trajectories)
            assert np.array_equal(
                ref_prefix.charged_calls(), cmp_prefix.charged_calls()
            )

    def test_chunked_predraw_is_seamless(self, walk_csr, monkeypatch):
        """Tiny chunks (many rng.random calls) must not move a single bit."""
        spec = KernelSpec("mhrw")
        whole = BatchedWalkEngine(
            walk_csr, kernel=spec, rng=13, engine="compiled"
        ).run_fleet(6, STEPS, burn_in=BURN_IN)
        monkeypatch.setattr(compiled_module, "_CHUNK_DOUBLES", 16)
        chunked = BatchedWalkEngine(
            walk_csr, kernel=spec, rng=13, engine="compiled"
        ).run_fleet(6, STEPS, burn_in=BURN_IN)
        assert np.array_equal(whole.trajectories, chunked.trajectories)
        assert np.array_equal(whole.probed, chunked.probed)

    def test_budget_crossing_raises_on_both_engines(self, walk_csr):
        probe = BatchedWalkEngine(walk_csr, kernel="mhrw", rng=7).run(
            6, STEPS, burn_in=BURN_IN
        )
        tight = probe.charged_calls - 1
        for engine in ("numpy", "compiled"):
            with pytest.raises(APIBudgetExceededError):
                BatchedWalkEngine(
                    walk_csr, kernel="mhrw", rng=7, budget=tight, engine=engine
                ).run(6, STEPS, burn_in=BURN_IN)

    def test_mdrw_overflow_raises_on_both_engines(self, walk_csr):
        spec = KernelSpec("mdrw", max_degree=1.5)  # below the real maximum
        for engine in ("numpy", "compiled"):
            with pytest.raises(WalkError, match="max_degree"):
                BatchedWalkEngine(
                    walk_csr, kernel=spec, rng=1, engine=engine
                ).run_fleet(16, STEPS)


# ----------------------------------------------------------------------
# line-graph fleet bit parity (the EX-* baselines)
# ----------------------------------------------------------------------
@pytest.mark.usefixtures("force_compiled")
class TestLineFleetParity:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_trajectories_probes_and_ledgers(self, walk_csr, width):
        for spec in _line_specs(walk_csr):
            fleets = {}
            for engine in ("numpy", "compiled"):
                fleets[engine] = BatchedLineWalkEngine(
                    walk_csr, kernel=spec, rng=23, engine=engine
                ).run_fleet(width, STEPS, burn_in=BURN_IN)
            reference, compiled = fleets["numpy"], fleets["compiled"]
            assert np.array_equal(reference.src, compiled.src), spec
            assert np.array_equal(reference.dst, compiled.dst), spec
            if reference.probed_src is None:
                assert compiled.probed_src is None, spec
            else:
                assert np.array_equal(reference.probed_src, compiled.probed_src)
                assert np.array_equal(reference.probed_dst, compiled.probed_dst)
            assert np.array_equal(
                reference.charged_calls(), compiled.charged_calls()
            ), spec

    def test_isolated_line_node_raises_on_both_engines(self):
        graph = LabeledGraph()
        graph.add_edge(1, 2)  # the only edge: a line graph with no neighbors
        csr = csr_view(graph)
        for engine in ("numpy", "compiled"):
            with pytest.raises(WalkError, match="isolated line node"):
                BatchedLineWalkEngine(csr, rng=0, engine=engine).run_fleet(3, 5)


# ----------------------------------------------------------------------
# harness-level parity: run_trials_prefix across backends
# ----------------------------------------------------------------------
@pytest.mark.usefixtures("force_compiled")
class TestHarnessParity:
    @pytest.mark.parametrize(
        "algorithm", ["NeighborSample-HH", "NeighborExploration-HH", "EX-MHRW"]
    )
    def test_run_trials_prefix_bit_identical_across_backends(
        self, gender_osn, algorithm
    ):
        from repro.experiments.algorithms import build_algorithm_suite
        from repro.experiments.runner import run_trials_prefix

        suite = build_algorithm_suite(gender_osn)
        columns = {}
        for backend in ("csr", "compiled"):
            columns[backend] = run_trials_prefix(
                gender_osn, 1, 2, suite[algorithm], algorithm,
                [15, 30], 5, BURN_IN, seed=29, backend=backend,
            )
        for reference, compiled in zip(columns["csr"], columns["compiled"]):
            assert reference.estimates == compiled.estimates
            assert reference.api_calls == compiled.api_calls

    def test_run_trials_fleet_bit_identical_across_backends(self, gender_osn):
        from repro.experiments.algorithms import build_algorithm_suite
        from repro.experiments.runner import run_trials

        suite = build_algorithm_suite(gender_osn)
        outcomes = {}
        for backend in ("csr", "compiled"):
            outcomes[backend] = run_trials(
                gender_osn, 1, 2, suite["NeighborSample-HT"], "NeighborSample-HT",
                sample_size=30, repetitions=5, burn_in=BURN_IN, seed=31,
                backend=backend, execution="fleet",
            )
        assert outcomes["csr"].estimates == outcomes["compiled"].estimates
        assert outcomes["csr"].api_calls == outcomes["compiled"].api_calls


# ----------------------------------------------------------------------
# the real JIT (numba CI leg only)
# ----------------------------------------------------------------------
@pytest.mark.requires_numba
class TestActualJit:
    def test_kernels_are_dispatchers(self):
        assert numba_available()
        # njit wraps the Python functions in dispatchers carrying py_func.
        assert hasattr(compiled_module._node_fleet_chunk, "py_func")
        assert hasattr(compiled_module._line_fleet_chunk, "py_func")

    def test_compiled_engine_selected_without_forcing(self, walk_csr):
        engine = BatchedWalkEngine(walk_csr, rng=0, engine="compiled")
        assert engine.engine == "compiled"
        fleet = engine.run_fleet(4, 20, burn_in=5)
        reference = BatchedWalkEngine(walk_csr, rng=0).run_fleet(4, 20, burn_in=5)
        assert np.array_equal(fleet.trajectories, reference.trajectories)
