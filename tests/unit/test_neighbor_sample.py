"""Unit tests for the NeighborSample sampling process (Algorithm 1)."""

import pytest

from repro.core.samplers import NeighborSampleSampler
from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.walks.kernels import NonBacktrackingKernel


class TestSingleWalkSampling:
    def test_sample_count(self, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=20, rng=1)
        samples = sampler.sample(50)
        assert samples.k == 50

    def test_samples_are_real_edges(self, gender_osn, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=20, rng=2)
        samples = sampler.sample(100)
        for sample in samples:
            assert gender_osn.has_edge(sample.u, sample.v)

    def test_target_flags_are_correct(self, gender_osn, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=20, rng=3)
        samples = sampler.sample(100)
        for sample in samples:
            assert sample.is_target == gender_osn.is_target_edge(sample.u, sample.v, 1, 2)

    def test_prior_knowledge_recorded(self, gender_osn, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=5, rng=4)
        samples = sampler.sample(10)
        assert samples.num_edges == gender_osn.num_edges
        assert samples.num_nodes == gender_osn.num_nodes
        assert samples.target_labels == (1, 2)

    def test_api_calls_recorded(self, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=5, rng=5)
        samples = sampler.sample(10)
        assert samples.api_calls_used == gender_api.api_calls
        assert samples.api_calls_used > 0

    def test_step_indices_are_sequential(self, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=5, rng=6)
        samples = sampler.sample(20)
        assert [s.step_index for s in samples] == list(range(20))

    def test_reproducible_with_seed(self, gender_osn):
        first = NeighborSampleSampler(RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10, rng=7)
        second = NeighborSampleSampler(RestrictedGraphAPI(gender_osn), 1, 2, burn_in=10, rng=7)
        edges_first = [(s.u, s.v) for s in first.sample(30)]
        edges_second = [(s.u, s.v) for s in second.sample(30)]
        assert edges_first == edges_second

    def test_invalid_k(self, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, rng=1)
        with pytest.raises(ConfigurationError):
            sampler.sample(0)

    def test_non_backtracking_kernel_supported(self, gender_api):
        sampler = NeighborSampleSampler(
            gender_api, 1, 2, burn_in=10, kernel=NonBacktrackingKernel(), rng=8
        )
        samples = sampler.sample(30)
        assert samples.k == 30

    def test_target_hit_rate_tracks_edge_fraction(self, gender_osn):
        """Uniform edge sampling: the hit rate must be close to F/|E|."""
        api = RestrictedGraphAPI(gender_osn)
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=50, rng=9)
        samples = sampler.sample(4000)
        hit_rate = len(samples.target_samples()) / samples.k
        true_fraction = count_target_edges(gender_osn, 1, 2) / gender_osn.num_edges
        assert hit_rate == pytest.approx(true_fraction, abs=0.06)


class TestIndependentSampling:
    def test_sample_count(self, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=5, rng=11)
        samples = sampler.sample(5, single_walk=False)
        assert samples.k == 5

    def test_independent_sampling_uses_more_api_calls(self, gender_osn):
        single_api = RestrictedGraphAPI(gender_osn, cache=False)
        multi_api = RestrictedGraphAPI(gender_osn, cache=False)
        k, burn_in = 10, 30
        NeighborSampleSampler(single_api, 1, 2, burn_in=burn_in, rng=12).sample(k)
        NeighborSampleSampler(multi_api, 1, 2, burn_in=burn_in, rng=12).sample(
            k, single_walk=False
        )
        assert multi_api.api_calls > single_api.api_calls

    def test_samples_are_real_edges(self, gender_osn, gender_api):
        sampler = NeighborSampleSampler(gender_api, 1, 2, burn_in=5, rng=13)
        for sample in sampler.sample(5, single_walk=False):
            assert gender_osn.has_edge(sample.u, sample.v)
