"""Vectorized array labelers vs the in-place dict labelers.

The degree-bucket model is deterministic, so the two paths must agree
bit for bit on the same degrees.  The random models (binary gender,
Zipf locations) are checked for the statistical properties the
estimators actually read: label fractions, cross-edge shares, and the
popularity ordering of the Zipf tail.
"""

import numpy as np
import pytest

from repro.datasets.labeling import (
    assign_binary_labels,
    assign_degree_bucket_labels,
    assign_zipf_labels,
    binary_fraction_for_cross_edge_share,
    binary_label_array,
    degree_bucket_label_array,
    zipf_label_array,
    zipf_weights,
)
from repro.datasets.synthetic import chung_lu_csr, powerlaw_degree_sequence
from repro.exceptions import ConfigurationError


class TestDegreeBucketsBitForBit:
    def test_matches_dict_labeler_on_same_graph(self, rare_label_osn):
        graph = rare_label_osn.copy()
        assign_degree_bucket_labels(graph)
        degrees = np.array([graph.degree(node) for node in graph.nodes()])
        array = degree_bucket_label_array(degrees)
        for position, node in enumerate(graph.nodes()):
            assert graph.labels_of(node) == frozenset((int(array[position]),))

    def test_matches_with_custom_thresholds(self):
        degrees = np.array([1, 2, 3, 7, 8, 20])
        thresholds = [1, 4, 8]
        array = degree_bucket_label_array(degrees, thresholds)
        assert array.tolist() == [0, 0, 0, 1, 2, 2]

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            degree_bucket_label_array(np.array([1, 2]), thresholds=[0, 2])


class TestBinaryLabelArray:
    def test_fraction_within_tolerance(self):
        probability = binary_fraction_for_cross_edge_share(0.424)
        labels = binary_label_array(200_000, probability, rng=1)
        observed = float((labels == 1).mean())
        assert observed == pytest.approx(probability, abs=0.005)

    def test_cross_edge_share_on_graph(self):
        graph = chung_lu_csr(powerlaw_degree_sequence(5000, 12.0), rng=2)
        probability = binary_fraction_for_cross_edge_share(0.424)
        labeled = graph.with_labels(
            label_array=binary_label_array(graph.num_nodes, probability, rng=3)
        )
        share = labeled.count_target_edges(1, 2) / labeled.num_edges
        assert share == pytest.approx(0.424, abs=0.03)

    def test_custom_label_values(self):
        labels = binary_label_array(100, 0.5, labels=(10, 20), rng=4)
        assert set(np.unique(labels).tolist()) <= {10, 20}

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            binary_label_array(500, 0.3, rng=7), binary_label_array(500, 0.3, rng=7)
        )


class TestZipfLabelArray:
    def test_range_and_offset(self):
        labels = zipf_label_array(10_000, num_labels=50, exponent=1.2, rng=5)
        assert labels.min() >= 1 and labels.max() <= 50

    def test_popularity_matches_weights(self):
        num_labels = 20
        labels = zipf_label_array(400_000, num_labels=num_labels, exponent=1.0, rng=6)
        counts = np.bincount(labels, minlength=num_labels + 1)[1:]
        weights = np.asarray(zipf_weights(num_labels, 1.0))
        expected = weights / weights.sum() * labels.size
        assert np.abs(counts - expected).max() < 6 * np.sqrt(expected.max())

    def test_head_labels_dominate_like_dict_path(self, rare_label_osn):
        graph = rare_label_osn.copy()
        assign_zipf_labels(graph, num_labels=30, exponent=1.1, rng=8)
        dict_counts = np.zeros(31)
        for node in graph.nodes():
            dict_counts[next(iter(graph.labels_of(node)))] += 1
        array = zipf_label_array(graph.num_nodes, num_labels=30, exponent=1.1, rng=9)
        array_counts = np.bincount(array, minlength=31)
        # both paths put the most mass on label 1 (the Zipf head)
        assert dict_counts.argmax() == 1
        assert array_counts.argmax() == 1
