"""Fault injection: plan grammar, deterministic firing, ambient wiring.

The injector is the foundation every chaos test stands on, so its own
contract is pinned hard here: the same plan over the same call sequence
must produce the same fault trace (determinism), and ``count`` budgets
must hold across processes (token files), or the worker-kill recovery
tests upstack become flaky by construction.
"""

import pytest

from repro.exceptions import ConfigurationError, StoreAttachError
from repro.resilience.faults import (
    FAULT_SITES,
    FAULTS_ENV,
    FAULTS_STATE_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_injector,
    fire,
    install_injector,
)


@pytest.fixture(autouse=True)
def clean_ambient(monkeypatch):
    """No test leaks an installed injector or a REPRO_FAULTS plan."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(FAULTS_STATE_ENV, raising=False)
    previous = install_injector(None)
    yield
    install_injector(previous)


class TestPlanGrammar:
    def test_full_plan_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7; store.attach=error,count=1 ;"
            "fleet.run=delay,seconds=0.25,after=2;"
            "worker.cell=kill,count=1,probability=0.5"
        )
        assert plan.seed == 7
        attach, delay, kill = plan.specs
        assert (attach.site, attach.action, attach.count) == (
            "store.attach", "error", 1,
        )
        assert (delay.site, delay.action) == ("fleet.run", "delay")
        assert delay.seconds == 0.25 and delay.after == 2
        assert kill.action == "kill" and kill.probability == 0.5

    def test_empty_plan_is_no_faults(self):
        plan = FaultPlan.parse("")
        assert plan.specs == ()
        assert plan.describe() == "no faults"

    def test_describe_names_sites_and_windows(self):
        plan = FaultPlan.parse("fleet.run=error,after=1,count=3,probability=0.5")
        assert plan.describe() == "fleet.run:error (after=1, count=3, p=0.5)"

    @pytest.mark.parametrize(
        "text",
        [
            "disk.write=error",            # unknown site
            "fleet.run=explode",           # unknown action
            "fleet.run=error,frequency=2",  # unknown knob
            "seed=banana",                 # non-integer seed
            "fleet.run=error,exc=KeyboardInterrupt",  # unlisted exception
            "fleet.run=error,probability=1.5",
            "fleet.run=delay,seconds=-1",
            "fleet.run=error,count=-2",
            "fleet.run=",                  # missing action
        ],
    )
    def test_bad_plans_fail_at_parse_time(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_default_exception_is_retryable_only_for_attach(self):
        assert FaultSpec("store.attach", "error").exception_type() is StoreAttachError
        for site in ("fleet.run", "batcher.flush", "worker.cell"):
            assert FaultSpec(site, "error").exception_type() is InjectedFaultError
        assert (
            FaultSpec("fleet.run", "error", exc="TimeoutError").exception_type()
            is TimeoutError
        )


class TestInjectorWindows:
    def test_after_and_count_bound_the_fires(self):
        injector = FaultInjector(FaultPlan.parse("fleet.run=error,after=1,count=2"))
        injector.fire("fleet.run")  # invocation 0: before the window
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.fire("fleet.run")
        injector.fire("fleet.run")  # budget spent: passes again
        assert [event.invocation for event in injector.trace] == [1, 2]
        assert injector.invocations("fleet.run") == 4

    def test_sites_count_invocations_independently(self):
        injector = FaultInjector(FaultPlan.parse("fleet.run=error,after=1"))
        for site in FAULT_SITES:
            if site != "fleet.run":
                injector.fire(site)
        injector.fire("fleet.run")  # still invocation 0 of its own site
        assert injector.trace == ()

    def test_attach_error_carries_the_location(self):
        injector = FaultInjector(FaultPlan.parse("store.attach=error,count=1"))
        with pytest.raises(StoreAttachError) as excinfo:
            injector.fire("store.attach", location="psm_chaos")
        assert excinfo.value.location == "psm_chaos"
        assert excinfo.value.retryable is True
        assert "psm_chaos" in str(excinfo.value)

    def test_delay_sleeps_through_the_injected_clock(self):
        slept = []
        injector = FaultInjector(
            FaultPlan.parse("fleet.run=delay,seconds=0.25,count=2"),
            sleep=slept.append,
        )
        for _ in range(3):
            injector.fire("fleet.run")
        assert slept == [0.25, 0.25]
        assert [event.action for event in injector.trace] == ["delay", "delay"]

    def test_kill_uses_the_injected_killer(self):
        kills = []
        injector = FaultInjector(
            FaultPlan.parse("worker.cell=kill,count=1"),
            kill=lambda: kills.append(True),
        )
        injector.fire("worker.cell")
        injector.fire("worker.cell")
        assert kills == [True]

    def test_probability_zero_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("fleet.run=error,probability=0.0"))
        for _ in range(50):
            injector.fire("fleet.run")
        assert injector.trace == ()


class TestDeterminism:
    @staticmethod
    def _trace(plan):
        injector = FaultInjector(plan)
        for _ in range(200):
            try:
                injector.fire("fleet.run")
            except InjectedFaultError:
                pass
        return injector.trace

    def test_same_seed_same_workload_same_trace(self):
        plan = FaultPlan.parse("seed=3;fleet.run=error,probability=0.4")
        first, second = self._trace(plan), self._trace(plan)
        assert first == second
        assert 0 < len(first) < 200  # genuinely probabilistic, not all-or-nothing

    def test_different_seed_different_trace(self):
        one = self._trace(FaultPlan.parse("seed=3;fleet.run=error,probability=0.4"))
        two = self._trace(FaultPlan.parse("seed=4;fleet.run=error,probability=0.4"))
        assert one != two


class TestCrossProcessBudgets:
    def test_state_dir_shares_one_count_budget(self, tmp_path):
        # Two injectors standing in for two processes (a worker and its
        # respawned replacement): the count=1 budget is claimed once.
        plan = FaultPlan.parse("worker.cell=kill,count=1")
        kills = []
        first = FaultInjector(plan, state_dir=str(tmp_path), kill=lambda: kills.append("a"))
        second = FaultInjector(plan, state_dir=str(tmp_path), kill=lambda: kills.append("b"))
        first.fire("worker.cell")
        second.fire("worker.cell")
        first.fire("worker.cell")
        assert kills == ["a"]
        assert [path.name for path in tmp_path.iterdir()] == ["fault-0-0.token"]

    def test_without_state_dir_budgets_are_per_injector(self):
        plan = FaultPlan.parse("fleet.run=error,count=1")
        for injector in (FaultInjector(plan), FaultInjector(plan)):
            with pytest.raises(InjectedFaultError):
                injector.fire("fleet.run")


class TestAmbientInjector:
    def test_fire_is_a_noop_without_an_injector(self):
        fire("fleet.run")  # must not raise

    def test_installed_injector_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fleet.run=error")
        install_injector(FaultInjector(FaultPlan()))
        fire("fleet.run")  # the empty installed plan wins: no fault
        install_injector(None)
        with pytest.raises(InjectedFaultError):
            fire("fleet.run")

    def test_env_injector_is_cached_so_counters_survive(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fleet.run=error,count=1")
        assert active_injector() is active_injector()
        with pytest.raises(InjectedFaultError):
            fire("fleet.run")
        fire("fleet.run")  # same injector: the count budget is spent

    def test_changing_the_plan_rebuilds_the_injector(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fleet.run=error,count=1")
        stale = active_injector()
        monkeypatch.setenv(FAULTS_ENV, "fleet.run=error,count=2")
        fresh = active_injector()
        assert fresh is not stale
        assert fresh.plan.specs[0].count == 2
