"""Unit tests for the shared utilities (rng, validation, logging)."""

import logging
import random

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import (
    choice_weighted,
    derive_seed,
    ensure_numpy_rng,
    ensure_rng,
    spawn_rngs,
)
from repro.utils.validation import (
    check_choice,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestEnsureRng:
    def test_none_gives_random(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_reproducible(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_existing_random_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_numpy_generator_accepted(self):
        rng = ensure_rng(np.random.default_rng(3))
        assert isinstance(rng, random.Random)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_ensure_numpy_rng_from_int(self):
        first = ensure_numpy_rng(5).integers(0, 100)
        second = ensure_numpy_rng(5).integers(0, 100)
        assert first == second

    def test_ensure_numpy_rng_invalid(self):
        with pytest.raises(TypeError):
            ensure_numpy_rng("bad")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_reproducible_family(self):
        first = [rng.random() for rng in spawn_rngs(42, 3)]
        second = [rng.random() for rng in spawn_rngs(42, 3)]
        assert first == second

    def test_streams_differ(self):
        streams = spawn_rngs(42, 2)
        assert streams[0].random() != streams[1].random()

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2018, "NS-HH", 3) == derive_seed(2018, "NS-HH", 3)

    def test_stable_across_processes(self):
        # pinned values: salted hash() must never leak back in — a
        # hash()-based implementation passes same-process equality but
        # cannot reproduce these constants
        assert derive_seed(2018, "NeighborSample-HH", 0) == 1974944679
        assert derive_seed(0, "x") == 1146306545

    def test_distinct_for_distinct_keys(self):
        seeds = {derive_seed(7, "algo", column) for column in range(20)}
        assert len(seeds) == 20

    def test_non_int_source_uses_zero_base(self):
        assert derive_seed(random.Random(5), "a", 1) == derive_seed(0, "a", 1)


class TestChoiceWeighted:
    def test_respects_zero_weight(self):
        rng = random.Random(0)
        picks = {choice_weighted(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_proportional_sampling(self):
        rng = random.Random(1)
        picks = [choice_weighted(rng, ["a", "b"], [9.0, 1.0]) for _ in range(2000)]
        assert picks.count("a") > picks.count("b") * 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            choice_weighted(random.Random(), ["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            choice_weighted(random.Random(), [], [])

    def test_non_positive_total_raises(self):
        with pytest.raises(ValueError):
            choice_weighted(random.Random(), ["a"], [0.0])


class TestValidation:
    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "x")

    def test_check_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive("nope", "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.0, "x") == 0.0
        assert check_probability(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "x")

    def test_check_fraction(self):
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "x")

    def test_check_in_range(self):
        assert check_in_range(0.4, "x", 0.3, 0.7) == 0.4
        with pytest.raises(ConfigurationError):
            check_in_range(0.8, "x", 0.3, 0.7)

    def test_check_choice(self):
        assert check_choice("a", "x", ["a", "b"]) == "a"
        with pytest.raises(ConfigurationError):
            check_choice("z", "x", ["a", "b"])

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_positive_int(-3, "my_param")


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("walks").name == "repro.walks"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_logging_idempotent(self):
        logger = configure_logging(level=logging.DEBUG)
        count_after_first = len(logger.handlers)
        configure_logging(level=logging.DEBUG)
        assert len(logger.handlers) == count_after_first
