"""Unit tests for the thinning strategy used by the HT estimators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.walks.thinning import (
    DEFAULT_THINNING_FRACTION,
    thin_indices,
    thin_sequence,
    thinning_interval,
)


class TestThinningInterval:
    def test_paper_default(self):
        # r = 2.5% of k, the value used in the paper
        assert thinning_interval(1000) == 25

    def test_rounds_up(self):
        assert thinning_interval(1001) == 26

    def test_minimum_of_one(self):
        assert thinning_interval(10) == 1
        assert thinning_interval(0) == 1

    def test_custom_fraction(self):
        assert thinning_interval(100, fraction=0.1) == 10

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            thinning_interval(100, fraction=0.0)

    def test_negative_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            thinning_interval(-5)


class TestThinIndices:
    def test_empty(self):
        assert thin_indices(0) == []

    def test_includes_zero(self):
        assert thin_indices(50)[0] == 0

    def test_spacing(self):
        indices = thin_indices(1000)
        gaps = {b - a for a, b in zip(indices, indices[1:])}
        assert gaps == {25}

    def test_all_kept_when_interval_is_one(self):
        assert thin_indices(20) == list(range(20))

    def test_indices_within_bounds(self):
        indices = thin_indices(123)
        assert all(0 <= i < 123 for i in indices)


class TestThinSequence:
    def test_values_match_indices(self):
        items = list(range(200))
        thinned = thin_sequence(items)
        assert thinned == [items[i] for i in thin_indices(200)]

    def test_default_fraction_constant(self):
        assert DEFAULT_THINNING_FRACTION == pytest.approx(0.025)
