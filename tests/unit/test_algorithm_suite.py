"""Unit tests for the experiment-level algorithm registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.algorithms import (
    ALL_ALGORITHM_ORDER,
    PAPER_ALGORITHM_ORDER,
    build_algorithm_suite,
)
from repro.graph.api import RestrictedGraphAPI


class TestOrder:
    def test_paper_order(self):
        assert PAPER_ALGORITHM_ORDER[0] == "NeighborSample-HH"
        assert len(PAPER_ALGORITHM_ORDER) == 5

    def test_all_order_has_ten(self):
        assert len(ALL_ALGORITHM_ORDER) == 10
        assert ALL_ALGORITHM_ORDER[5:] == ["EX-MDRW", "EX-MHRW", "EX-RW", "EX-RCMH", "EX-GMD"]


class TestBuildSuite:
    def test_full_suite(self, gender_osn):
        suite = build_algorithm_suite(gender_osn)
        assert list(suite) == ALL_ALGORITHM_ORDER[:5] + ["EX-MDRW", "EX-MHRW", "EX-RW", "EX-RCMH", "EX-GMD"]

    def test_without_baselines_graph_optional(self):
        suite = build_algorithm_suite(None, include_baselines=False)
        assert list(suite) == PAPER_ALGORITHM_ORDER

    def test_baselines_require_graph(self):
        with pytest.raises(ConfigurationError):
            build_algorithm_suite(None, include_baselines=True)

    def test_subset_preserves_canonical_order(self, gender_osn):
        suite = build_algorithm_suite(
            gender_osn, algorithms=["EX-RW", "NeighborSample-HH"]
        )
        assert list(suite) == ["NeighborSample-HH", "EX-RW"]

    def test_unknown_subset_entry(self, gender_osn):
        with pytest.raises(ConfigurationError):
            build_algorithm_suite(gender_osn, algorithms=["Nope"])

    def test_runners_share_signature(self, gender_osn):
        suite = build_algorithm_suite(gender_osn)
        for name in ("NeighborExploration-HH", "EX-MHRW"):
            api = RestrictedGraphAPI(gender_osn)
            result = suite[name](api, 1, 2, 30, 10, 3)
            assert result.estimate >= 0
            assert result.estimator == name
