"""The CSR-native data plane: edge-array assembly, labels, cleaning.

These tests pin the array-level builders against the dict-based
reference path on randomized inputs: same simple graph out of the same
raw edge list, same largest component, same labels through the escape
hatch — the contracts the million-node scale path relies on.
"""

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.cleaning import (
    connected_components,
    largest_component_mask,
    largest_connected_component_csr,
)
from repro.graph.csr import CSRGraph, csr_view, indices_dtype, sorted_unique
from repro.graph.labeled_graph import LabeledGraph


def dict_graph_from_edges(edges, num_nodes):
    graph = LabeledGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    for u, v in edges:
        if u != v and not graph.has_edge(int(u), int(v)):
            graph.add_edge(int(u), int(v))
    return graph


class TestFromEdgeArray:
    def test_drops_self_loops_and_duplicates(self):
        edges = np.array([[0, 1], [1, 0], [0, 1], [2, 2], [1, 2]])
        csr = CSRGraph.from_edge_array(edges, num_nodes=3)
        assert csr.num_nodes == 3
        assert csr.num_edges == 2
        assert sorted(csr.neighbors(1).tolist()) == [0, 2]

    def test_adjacency_is_symmetric_and_sorted(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 30, size=(120, 2))
        csr = CSRGraph.from_edge_array(edges, num_nodes=30)
        for i in range(30):
            row = csr.neighbors(i).tolist()
            assert row == sorted(row)
            for j in row:
                assert i in csr.neighbors(int(j)).tolist()

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dict_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 50))
        edges = rng.integers(0, n, size=(int(rng.integers(1, 150)), 2))
        csr = CSRGraph.from_edge_array(edges, num_nodes=n)
        reference = dict_graph_from_edges(edges, n)
        assert csr.num_nodes == reference.num_nodes
        assert csr.num_edges == reference.num_edges
        for i in range(n):
            assert set(csr.neighbors(i).tolist()) == set(reference.neighbors(i))

    def test_rejects_bad_shapes_and_ranges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_array(np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(GraphError):
            CSRGraph.from_edge_array(np.array([[0, 5]]), num_nodes=3)

    def test_empty_edge_list(self):
        csr = CSRGraph.from_edge_array(np.empty((0, 2), dtype=np.int64), num_nodes=4)
        assert csr.num_nodes == 4 and csr.num_edges == 0


class TestCompactIndices:
    def test_indices_dtype_is_int32_below_limit(self):
        assert indices_dtype(10) == np.int32
        assert indices_dtype(2**31 - 1) == np.int32
        assert indices_dtype(2**31) == np.int64

    def test_graph_stores_int32_indices(self):
        csr = CSRGraph.from_edge_array(np.array([[0, 1], [1, 2]]), num_nodes=3)
        assert csr.indices.dtype == np.int32
        assert csr.indptr.dtype == np.int64

    def test_from_labeled_graph_also_compact(self, triangle_graph):
        assert csr_view(triangle_graph).indices.dtype == np.int32


class TestIdentityNodeIds:
    def test_identity_ids_are_a_range(self):
        csr = CSRGraph.from_edge_array(np.array([[0, 1]]), num_nodes=2)
        assert isinstance(csr.node_ids, range)
        assert csr.node_id_list() == [0, 1]
        assert csr.index_of(1) == 1

    def test_identity_index_of_rejects_unknown(self):
        csr = CSRGraph.from_edge_array(np.array([[0, 1]]), num_nodes=2)
        with pytest.raises(NodeNotFoundError):
            csr.index_of(5)
        with pytest.raises(NodeNotFoundError):
            csr.index_of("a")

    def test_explicit_ids_still_resolve(self, triangle_graph):
        csr = csr_view(triangle_graph)
        for node in triangle_graph.nodes():
            assert csr.node_ids[csr.index_of(node)] == node


class TestLabelArray:
    def test_label_array_masks_and_queries(self):
        csr = CSRGraph.from_edge_array(
            np.array([[0, 1], [1, 2], [2, 0]]), num_nodes=3
        ).with_labels(label_array=np.array([7, 8, 7]))
        assert csr.label_mask(7).tolist() == [True, False, True]
        assert csr.label_mask("seven").tolist() == [False, False, False]
        assert csr.labels_of(1) == frozenset((8,))
        assert csr.all_labels() == {7, 8}
        assert csr.count_target_edges(7, 8) == 2

    def test_with_labels_shares_adjacency(self):
        base = CSRGraph.from_edge_array(np.array([[0, 1]]), num_nodes=2)
        labeled = base.with_labels(label_array=np.array([1, 2]))
        assert labeled.indices is base.indices
        assert labeled.indptr is base.indptr
        assert base.labels_of(0) == frozenset()

    def test_label_sets_and_array_mutually_exclusive(self):
        with pytest.raises(GraphError):
            CSRGraph(
                None,
                np.array([0, 1, 2]),
                np.array([1, 0]),
                [{1}, {2}],
                label_array=np.array([1, 2]),
            )

    def test_count_matches_set_labeled_view(self, rare_label_osn):
        reference = csr_view(rare_label_osn)
        # Rebuild the same graph with an array labeling.
        index_of = {n: i for i, n in enumerate(rare_label_osn.nodes())}
        labels = np.array(
            [next(iter(rare_label_osn.labels_of(n))) for n in rare_label_osn.nodes()]
        )
        edges = np.array(
            [[index_of[u], index_of[v]] for u, v in rare_label_osn.edges()]
        )
        rebuilt = CSRGraph.from_edge_array(
            edges, num_nodes=rare_label_osn.num_nodes
        ).with_labels(label_array=labels)
        for t1, t2 in ((1, 2), (1, 1), (3, 9)):
            assert rebuilt.count_target_edges(t1, t2) == reference.count_target_edges(t1, t2)


class TestToLabeledGraph:
    def test_round_trip_topology_and_labels(self):
        csr = CSRGraph.from_edge_array(
            np.array([[0, 1], [1, 2], [3, 1]]), num_nodes=4
        ).with_labels(label_array=np.array([1, 2, 1, 2]))
        graph = csr.to_labeled_graph()
        assert graph.num_nodes == csr.num_nodes
        assert graph.num_edges == csr.num_edges
        assert list(graph.nodes()) == csr.node_id_list()
        for i, node in enumerate(csr.node_id_list()):
            assert graph.labels_of(node) == csr.labels_of(i)
            assert set(graph.neighbors(node)) == {
                csr.node_id_list()[j] for j in csr.neighbors(i).tolist()
            }

    def test_refreeze_preserves_counts(self, rare_label_osn):
        csr = csr_view(rare_label_osn)
        refrozen = csr_view(csr.to_labeled_graph())
        assert refrozen.num_nodes == csr.num_nodes
        assert refrozen.num_edges == csr.num_edges
        assert refrozen.count_target_edges(1, 2) == csr.count_target_edges(1, 2)


class TestSortedUnique:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_np_unique(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 40, size=200)
        assert np.array_equal(sorted_unique(values), np.unique(values))

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert sorted_unique(empty).size == 0


class TestCSRCleaning:
    @pytest.mark.parametrize("seed", range(8))
    def test_largest_component_matches_dict_cleaner(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 80))
        edges = rng.integers(0, n, size=(int(rng.integers(1, 90)), 2))
        csr = CSRGraph.from_edge_array(edges, num_nodes=n)
        components = connected_components(dict_graph_from_edges(edges, n))
        mask = largest_component_mask(csr.indptr, csr.indices)
        assert int(mask.sum()) == len(components[0])
        lcc = largest_connected_component_csr(csr)
        assert lcc.num_nodes == len(components[0])
        # every surviving row is internally consistent
        assert lcc.indices.size == int(lcc.indptr[-1])
        if lcc.num_nodes > 1:
            assert int(np.asarray(lcc.degrees).min()) >= 1

    def test_connected_graph_returned_unchanged(self):
        csr = CSRGraph.from_edge_array(np.array([[0, 1], [1, 2]]), num_nodes=3)
        assert largest_connected_component_csr(csr) is csr

    def test_node_ids_point_back_to_original_indices(self):
        # two components: {0,1,2} (a path) and {3,4} — keep the triangle
        csr = CSRGraph.from_edge_array(
            np.array([[0, 1], [1, 2], [0, 2], [3, 4]]), num_nodes=5
        )
        lcc = largest_connected_component_csr(csr)
        assert lcc.node_id_list() == [0, 1, 2]

    def test_labels_survive_compaction(self):
        csr = CSRGraph.from_edge_array(
            np.array([[0, 1], [1, 2], [3, 4]]), num_nodes=5
        ).with_labels(label_array=np.array([5, 6, 5, 9, 9]))
        lcc = largest_connected_component_csr(csr)
        assert lcc.num_nodes == 3
        assert [lcc.labels_of(i) for i in range(3)] == [
            frozenset((5,)),
            frozenset((6,)),
            frozenset((5,)),
        ]
