"""Unit tests for the labeled wedge / triangle extension."""

import statistics

import pytest

from repro.extensions.labeled_motifs import (
    LabeledTriangleEstimator,
    LabeledWedgeEstimator,
    count_target_triangles,
    count_target_wedges,
)
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.utils.rng import spawn_rngs


@pytest.fixture
def labeled_square_with_diagonal():
    """4-cycle 1-2-3-4 plus the diagonal 1-3; labels a, b, a, c."""
    graph = LabeledGraph.from_edges(
        [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)],
        {1: ["a"], 2: ["b"], 3: ["a"], 4: ["c"]},
    )
    return graph


class TestExactWedgeCount:
    def test_triangle_fixture(self, triangle_graph):
        # wedges a-b-a: center must be labeled 'b' (only node 3? no - 3 is 'b'?)
        # triangle fixture: 1:'a', 2:'a', 3:'b'.  Wedge a - b - a: center 3,
        # endpoints 1 and 2 -> exactly one wedge.
        assert count_target_wedges(triangle_graph, "a", "b", "a") == 1

    def test_distinct_end_labels(self, labeled_square_with_diagonal):
        graph = labeled_square_with_diagonal
        # wedges b - a - c: centers labeled 'a' are 1 and 3; each has
        # neighbors 2 ('b') and 4 ('c') -> one wedge per center.
        assert count_target_wedges(graph, "b", "a", "c") == 2

    def test_same_end_labels(self, labeled_square_with_diagonal):
        graph = labeled_square_with_diagonal
        # wedges a - b - a: center 2 has neighbors 1 and 3 (both 'a') -> 1.
        assert count_target_wedges(graph, "a", "b", "a") == 1
        # wedges a - c - a: center 4 has neighbors 1 and 3 (both 'a') -> 1.
        assert count_target_wedges(graph, "a", "c", "a") == 1

    def test_missing_center_label(self, labeled_square_with_diagonal):
        assert count_target_wedges(labeled_square_with_diagonal, "a", "zzz", "a") == 0

    def test_endpoints_with_both_labels_counted_once(self):
        graph = LabeledGraph.from_edges(
            [(0, 1), (0, 2)], {0: ["c"], 1: ["x", "y"], 2: ["x", "y"]}
        )
        # The single unordered endpoint pair {1, 2} can be assigned (x, y)
        # in two ways but is one wedge.
        assert count_target_wedges(graph, "x", "c", "y") == 1

    def test_star_wedges(self, star_graph):
        # center 'hub' with 5 'leaf' neighbors: C(5, 2) = 10 leaf-hub-leaf wedges.
        assert count_target_wedges(star_graph, "leaf", "hub", "leaf") == 10


class TestExactTriangleCount:
    def test_single_triangle(self, triangle_graph):
        assert count_target_triangles(triangle_graph, "a", "a", "b") == 1
        assert count_target_triangles(triangle_graph, "a", "b", "a") == 1

    def test_label_mismatch(self, triangle_graph):
        assert count_target_triangles(triangle_graph, "b", "b", "a") == 0

    def test_square_with_diagonal(self, labeled_square_with_diagonal):
        graph = labeled_square_with_diagonal
        # triangles: {1,2,3} labels (a,b,a) and {1,3,4} labels (a,a,c)
        assert count_target_triangles(graph, "a", "b", "a") == 1
        assert count_target_triangles(graph, "a", "a", "c") == 1
        assert count_target_triangles(graph, "a", "b", "c") == 0

    def test_all_same_label(self):
        graph = LabeledGraph.from_edges(
            [(1, 2), (2, 3), (1, 3), (3, 4)], {1: ["a"], 2: ["a"], 3: ["a"], 4: ["a"]}
        )
        assert count_target_triangles(graph, "a", "a", "a") == 1


class TestWedgeEstimator:
    def test_mean_converges_to_truth(self, gender_osn):
        truth = count_target_wedges(gender_osn, 1, 2, 1)
        estimates = []
        for rng in spawn_rngs(303, 15):
            api = RestrictedGraphAPI(gender_osn)
            estimator = LabeledWedgeEstimator(api, 1, 2, 1, burn_in=50, rng=rng)
            estimates.append(estimator.estimate(150).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.25)

    def test_zero_when_center_label_missing(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        estimator = LabeledWedgeEstimator(api, 1, 404, 2, burn_in=20, rng=1)
        assert estimator.estimate(50).estimate == 0.0

    def test_result_metadata(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        result = LabeledWedgeEstimator(api, 1, 2, 1, burn_in=20, rng=2).estimate(40)
        assert result.estimator == "LabeledWedge-HH"
        assert result.sample_size == 40
        assert result.api_calls > 0
        assert result.details["explored_centers"] >= 0

    def test_invalid_k(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        with pytest.raises(Exception):
            LabeledWedgeEstimator(api, 1, 2, 1, rng=1).estimate(0)


class TestTriangleEstimator:
    def test_mean_converges_to_truth(self, gender_osn):
        truth = count_target_triangles(gender_osn, 1, 1, 2)
        assert truth > 0
        estimates = []
        for rng in spawn_rngs(404, 15):
            api = RestrictedGraphAPI(gender_osn)
            estimator = LabeledTriangleEstimator(api, 1, 1, 2, burn_in=50, rng=rng)
            estimates.append(estimator.estimate(150).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.3)

    def test_zero_when_labels_missing(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        estimator = LabeledTriangleEstimator(api, 404, 405, 406, burn_in=20, rng=1)
        assert estimator.estimate(50).estimate == 0.0

    def test_result_metadata(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        result = LabeledTriangleEstimator(api, 1, 2, 2, burn_in=20, rng=3).estimate(30)
        assert result.estimator == "LabeledTriangle-HH"
        assert result.details["triangle_incidences"] >= 0
