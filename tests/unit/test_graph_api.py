"""Unit tests for the restricted OSN API wrapper."""

import pytest

from repro.exceptions import APIBudgetExceededError
from repro.graph.api import APICallCounter, RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel


@pytest.fixture
def small_graph() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_edge("u", "v")
    graph.add_edge("v", "w")
    graph.set_labels("u", [1])
    graph.set_labels("v", [2])
    graph.set_labels("w", [1])
    return graph


class TestCounter:
    def test_charge_increments(self):
        counter = APICallCounter()
        counter.charge("u")
        counter.charge("u")
        counter.charge("v")
        assert counter.calls == 3
        assert counter.per_node == {"u": 2, "v": 1}

    def test_budget_enforced(self):
        counter = APICallCounter(budget=2)
        counter.charge("u")
        counter.charge("v")
        with pytest.raises(APIBudgetExceededError):
            counter.charge("w")

    def test_reset_keeps_budget(self):
        counter = APICallCounter(budget=5)
        counter.charge("u")
        counter.record_cache_hit()
        counter.reset()
        assert counter.calls == 0
        assert counter.cache_hits == 0
        assert counter.budget == 5

    def test_total_requests(self):
        counter = APICallCounter()
        counter.charge("u")
        counter.record_cache_hit()
        assert counter.total_requests == 2


class TestRestrictedAPI:
    def test_neighbors_charges_once_with_cache(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert set(api.neighbors("v")) == {"u", "w"}
        assert api.api_calls == 1
        api.neighbors("v")
        assert api.api_calls == 1
        assert api.counter.cache_hits == 1

    def test_neighbors_charges_every_time_without_cache(self, small_graph):
        api = RestrictedGraphAPI(small_graph, cache=False)
        api.neighbors("v")
        api.neighbors("v")
        assert api.api_calls == 2

    def test_labels_share_page_with_neighbors(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        api.neighbors("u")
        assert api.labels_of("u") == frozenset({1})
        # label lookup for an already-downloaded page is free
        assert api.api_calls == 1

    def test_degree(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert api.degree("v") == 2

    def test_has_label(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert api.has_label("w", 1)
        assert not api.has_label("w", 2)

    def test_prior_knowledge_defaults_to_truth(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert api.num_nodes == 3
        assert api.num_edges == 2

    def test_prior_knowledge_override(self, small_graph):
        api = RestrictedGraphAPI(small_graph, known_num_nodes=100, known_num_edges=500)
        assert api.num_nodes == 100
        assert api.num_edges == 500

    def test_budget_exceeded_raises(self, small_graph):
        api = RestrictedGraphAPI(small_graph, budget=1, cache=False)
        api.neighbors("u")
        with pytest.raises(APIBudgetExceededError):
            api.neighbors("v")

    def test_random_node_is_deterministic_with_seed(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert api.random_node(rng=3) == api.random_node(rng=3)

    def test_random_node_member_of_graph(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        assert api.random_node(rng=1) in {"u", "v", "w"}

    def test_reset_counter_clears_cache(self, small_graph):
        api = RestrictedGraphAPI(small_graph)
        api.neighbors("u")
        api.reset_counter()
        assert api.api_calls == 0
        api.neighbors("u")
        assert api.api_calls == 1


class TestBudgetEdgeCases:
    """Budget exhaustion, cache-hit accounting and zero-budget behavior."""

    def test_budget_exhaustion_mid_walk(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn, budget=10)
        walk = RandomWalk(api, SimpleRandomWalkKernel(), burn_in=0, rng=7)
        with pytest.raises(APIBudgetExceededError) as excinfo:
            walk.run(500)
        assert excinfo.value.budget == 10
        assert excinfo.value.used == 11
        # the counter stopped right where the budget was crossed
        assert api.api_calls == 11

    def test_walk_within_budget_thanks_to_cache(self, small_graph):
        # a 3-node path has only 3 pages; with caching a long walk fits
        # in a budget of 3 because revisits are free
        api = RestrictedGraphAPI(small_graph, budget=3)
        walk = RandomWalk(api, SimpleRandomWalkKernel(), burn_in=0, rng=5)
        result = walk.run(200)
        assert len(result) == 200
        assert api.api_calls <= 3
        assert api.counter.cache_hits > 200

    def test_cache_hit_accounting_repeat_lookups_are_free(self, small_graph):
        api = RestrictedGraphAPI(small_graph, budget=2)
        api.neighbors("u")
        api.labels_of("u")  # same page: free
        for _ in range(10):
            api.neighbors("u")
            api.degree("u")
        assert api.api_calls == 1
        assert api.counter.cache_hits == 21
        assert api.counter.total_requests == 22
        assert api.counter.per_node == {"u": 1}

    def test_zero_budget_rejects_first_call(self, small_graph):
        api = RestrictedGraphAPI(small_graph, budget=0)
        with pytest.raises(APIBudgetExceededError) as excinfo:
            api.neighbors("u")
        assert excinfo.value.budget == 0
        assert excinfo.value.used == 1

    def test_zero_budget_walk_raises(self, small_graph):
        api = RestrictedGraphAPI(small_graph, budget=0)
        walk = RandomWalk(api, SimpleRandomWalkKernel(), burn_in=0, rng=1)
        with pytest.raises(APIBudgetExceededError):
            walk.run(1)

    def test_zero_budget_random_node_is_free(self, small_graph):
        # drawing a start node is prior knowledge, not an API call
        api = RestrictedGraphAPI(small_graph, budget=0)
        assert api.random_node(rng=1) in {"u", "v", "w"}
        assert api.api_calls == 0

    def test_exhausted_budget_still_serves_cached_pages(self, small_graph):
        api = RestrictedGraphAPI(small_graph, budget=1)
        api.neighbors("u")
        with pytest.raises(APIBudgetExceededError):
            api.neighbors("v")
        # the already-downloaded page stays readable
        assert set(api.neighbors("u")) == {"v"}
