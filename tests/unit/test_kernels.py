"""Unit tests for the transition kernels, including stationary-law checks.

The stationary-distribution checks run a long walk on a small graph and
compare empirical visit frequencies with the kernel's claimed stationary
weights — loose tolerances, but tight enough to catch a wrong acceptance
rule or a wrong weight formula.
"""

import random
from collections import Counter

import pytest

from repro.exceptions import WalkError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.engine import RandomWalk
from repro.walks.kernels import (
    GeneralMaximumDegreeKernel,
    MaximumDegreeKernel,
    MetropolisHastingsKernel,
    NonBacktrackingKernel,
    RejectionControlledMHKernel,
    SimpleRandomWalkKernel,
)


@pytest.fixture(scope="module")
def lollipop_api():
    """A small irregular graph: a triangle with a pendant path."""
    graph = LabeledGraph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
    return RestrictedGraphAPI(graph)


def empirical_distribution(api, kernel, steps=40_000, seed=13):
    walk = RandomWalk(api, kernel, burn_in=200, rng=seed)
    result = walk.run(steps)
    counts = Counter(result.nodes)
    return {node: counts[node] / steps for node in counts}


def expected_distribution(api, kernel, nodes):
    weights = {node: kernel.stationary_weight(api, node) for node in nodes}
    total = sum(weights.values())
    return {node: weight / total for node, weight in weights.items()}


STATIONARY_KERNELS = [
    SimpleRandomWalkKernel(),
    MetropolisHastingsKernel(),
    MaximumDegreeKernel(max_degree=3),
    RejectionControlledMHKernel(alpha=0.3),
    GeneralMaximumDegreeKernel(max_degree=3, delta=0.5),
    NonBacktrackingKernel(),
]


@pytest.mark.parametrize("kernel", STATIONARY_KERNELS, ids=lambda k: k.name)
def test_empirical_stationary_distribution_matches_weights(lollipop_api, kernel):
    nodes = [1, 2, 3, 4, 5]
    empirical = empirical_distribution(lollipop_api, kernel)
    expected = expected_distribution(lollipop_api, kernel, nodes)
    for node in nodes:
        assert empirical.get(node, 0.0) == pytest.approx(expected[node], abs=0.03)


class TestSimpleKernel:
    def test_step_moves_to_neighbor(self, lollipop_api):
        kernel = SimpleRandomWalkKernel()
        rng = random.Random(0)
        nxt, _ = kernel.step(lollipop_api, 3, None, rng)
        assert nxt in lollipop_api.neighbors(3)

    def test_stationary_weight_is_degree(self, lollipop_api):
        kernel = SimpleRandomWalkKernel()
        assert kernel.stationary_weight(lollipop_api, 3) == 3.0

    def test_isolated_node_raises(self):
        graph = LabeledGraph()
        graph.add_node(1)
        api = RestrictedGraphAPI(graph)
        with pytest.raises(WalkError):
            SimpleRandomWalkKernel().step(api, 1, None, random.Random(0))


class TestNonBacktracking:
    def test_never_backtracks_when_alternatives_exist(self, lollipop_api):
        kernel = NonBacktrackingKernel()
        rng = random.Random(3)
        current = 3
        state = kernel.initial_state(lollipop_api, current, rng)
        for _ in range(200):
            nxt, new_state = kernel.step(lollipop_api, current, state, rng)
            previous = state
            if previous is not None and lollipop_api.degree(current) > 1:
                assert nxt != previous
            current, state = nxt, new_state

    def test_backtracks_at_dead_end(self):
        graph = LabeledGraph.from_edges([(1, 2)])
        api = RestrictedGraphAPI(graph)
        kernel = NonBacktrackingKernel()
        rng = random.Random(0)
        nxt, state = kernel.step(api, 1, None, rng)
        assert nxt == 2
        nxt2, _ = kernel.step(api, 2, state, rng)
        assert nxt2 == 1


class TestMetropolisHastings:
    def test_acceptance_towards_lower_degree(self, lollipop_api):
        # From a degree-3 node to a degree-1 neighbor the move is always accepted.
        kernel = MetropolisHastingsKernel()
        moved = 0
        rng = random.Random(5)
        for _ in range(200):
            nxt, _ = kernel.step(lollipop_api, 4, None, rng)
            if nxt != 4:
                moved += 1
        # node 4 has neighbors of degree 3 and 1; proposals to the degree-1
        # node are always accepted, so the walk must move reasonably often.
        assert moved > 100

    def test_uniform_weight(self, lollipop_api):
        assert MetropolisHastingsKernel().stationary_weight(lollipop_api, 3) == 1.0


class TestMaximumDegree:
    def test_invalid_max_degree(self):
        with pytest.raises(Exception):
            MaximumDegreeKernel(0)

    def test_degree_above_max_raises(self, lollipop_api):
        kernel = MaximumDegreeKernel(max_degree=2)
        with pytest.raises(WalkError):
            kernel.step(lollipop_api, 3, None, random.Random(0))

    def test_self_loops_at_low_degree_nodes(self, lollipop_api):
        kernel = MaximumDegreeKernel(max_degree=50)
        rng = random.Random(1)
        stays = sum(
            1 for _ in range(300) if kernel.step(lollipop_api, 5, None, rng)[0] == 5
        )
        # degree(5) = 1 and max 50 -> the walk self-loops ~98% of the time
        assert stays > 250


class TestRejectionControlled:
    def test_alpha_zero_is_simple_walk(self, lollipop_api):
        kernel = RejectionControlledMHKernel(alpha=0.0)
        rng = random.Random(2)
        for _ in range(50):
            nxt, _ = kernel.step(lollipop_api, 3, None, rng)
            assert nxt != 3  # never rejects

    def test_alpha_one_matches_mh_weight(self, lollipop_api):
        kernel = RejectionControlledMHKernel(alpha=1.0)
        assert kernel.stationary_weight(lollipop_api, 3) == pytest.approx(1.0)

    def test_weight_interpolates(self, lollipop_api):
        kernel = RejectionControlledMHKernel(alpha=0.5)
        assert kernel.stationary_weight(lollipop_api, 3) == pytest.approx(3**0.5)

    def test_invalid_alpha(self):
        with pytest.raises(Exception):
            RejectionControlledMHKernel(alpha=1.5)


class TestGeneralMaximumDegree:
    def test_virtual_degree_cap(self):
        kernel = GeneralMaximumDegreeKernel(max_degree=10, delta=0.5)
        assert kernel.virtual_degree(2) == 5.0
        assert kernel.virtual_degree(8) == 8.0

    def test_delta_one_is_max_degree_walk(self, lollipop_api):
        kernel = GeneralMaximumDegreeKernel(max_degree=3, delta=1.0)
        assert kernel.stationary_weight(lollipop_api, 5) == 3.0

    def test_delta_zero_rejected(self):
        with pytest.raises(WalkError):
            GeneralMaximumDegreeKernel(max_degree=3, delta=0.0)

    def test_moves_more_than_plain_md_at_low_degree_nodes(self, lollipop_api):
        rng_md = random.Random(3)
        rng_gmd = random.Random(3)
        md = MaximumDegreeKernel(max_degree=3)
        gmd = GeneralMaximumDegreeKernel(max_degree=3, delta=0.4)
        md_moves = sum(1 for _ in range(300) if md.step(lollipop_api, 5, None, rng_md)[0] != 5)
        gmd_moves = sum(
            1 for _ in range(300) if gmd.step(lollipop_api, 5, None, rng_gmd)[0] != 5
        )
        assert gmd_moves >= md_moves
