"""Unit tests for the synthetic topology generators."""

import pytest

from repro.datasets.synthetic import (
    barabasi_albert_osn,
    chung_lu_osn,
    erdos_renyi_osn,
    powerlaw_cluster_osn,
    small_world_osn,
)
from repro.exceptions import ConfigurationError
from repro.graph.cleaning import is_connected


class TestPowerlawCluster:
    def test_connected_and_simple(self):
        graph = powerlaw_cluster_osn(300, 4, 0.3, rng=1)
        assert is_connected(graph)
        assert graph.num_nodes <= 300
        assert graph.min_degree() >= 1

    def test_reproducible(self):
        first = powerlaw_cluster_osn(200, 3, 0.2, rng=9)
        second = powerlaw_cluster_osn(200, 3, 0.2, rng=9)
        assert first.num_edges == second.num_edges
        assert set(first.edges()) == set(second.edges())

    def test_different_seeds_differ(self):
        first = powerlaw_cluster_osn(200, 3, 0.2, rng=1)
        second = powerlaw_cluster_osn(200, 3, 0.2, rng=2)
        assert set(first.edges()) != set(second.edges())

    def test_heavy_tail(self):
        graph = powerlaw_cluster_osn(1500, 4, 0.2, rng=3)
        assert graph.max_degree() > 5 * graph.average_degree()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_osn(10, 10, 0.3)
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_osn(0, 2, 0.3)
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_osn(10, 2, 1.5)


class TestOtherGenerators:
    def test_barabasi_albert(self):
        graph = barabasi_albert_osn(200, 3, rng=4)
        assert is_connected(graph)
        assert graph.num_nodes == 200

    def test_erdos_renyi_keeps_largest_component(self):
        graph = erdos_renyi_osn(300, 0.01, rng=5)
        assert is_connected(graph)

    def test_small_world(self):
        graph = small_world_osn(200, 6, 0.1, rng=6)
        assert is_connected(graph)
        assert graph.average_degree() >= 5

    def test_chung_lu_matches_degree_scale(self):
        degrees = [10] * 50 + [3] * 150
        graph = chung_lu_osn(degrees, rng=7)
        assert graph.num_nodes <= 200
        assert graph.average_degree() == pytest.approx(
            sum(degrees) / len(degrees), rel=0.5
        )

    def test_chung_lu_empty_sequence(self):
        with pytest.raises(ConfigurationError):
            chung_lu_osn([])

    def test_labels_start_empty(self):
        graph = barabasi_albert_osn(100, 2, rng=8)
        assert graph.all_labels() == set()
