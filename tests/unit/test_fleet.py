"""Unit tests for the fleet execution path.

Covers the three new layers end to end on small graphs:

* the fleet walk engine (full trajectories, per-walker ledgers,
  per-walker budget enforcement),
* the fleet samplers and their charged-call parity with a replay
  through the reference :class:`RestrictedGraphAPI` (the "budget
  ledger" guarantee of ``execution="fleet"``),
* the array-native ``estimate_batch`` estimators against the scalar
  estimators, trial by trial,
* ``run_trials(execution="fleet")`` dispatch, reproducibility and the
  EX-* sequential fallback,
* ``n_jobs > 1`` determinism: the same table for any worker count.
"""

import numpy as np
import pytest

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers.csr_backend import (
    EXECUTIONS,
    explore_nodes_fleet,
    sample_edges_fleet,
    validate_execution,
)
from repro.exceptions import APIBudgetExceededError, ConfigurationError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms, run_trials
from repro.experiments.sweeps import frequency_sweep
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import csr_view
from repro.walks.batched import BatchedWalkEngine, per_walker_distinct_counts

REPS = 6
K = 60
BURN_IN = 12


@pytest.fixture(scope="module")
def gender_csr(gender_osn):
    return csr_view(gender_osn)


# ----------------------------------------------------------------------
# fleet walk engine
# ----------------------------------------------------------------------
class TestFleetWalk:
    def test_trajectory_shape_and_slices(self, gender_csr):
        fleet = BatchedWalkEngine(gender_csr, rng=0).run_fleet(REPS, K, burn_in=BURN_IN)
        assert fleet.trajectories.shape == (REPS, BURN_IN + K + 1)
        assert fleet.num_walkers == REPS
        assert fleet.num_steps == K
        assert fleet.collected.shape == (REPS, K)
        # sources are the positions one step before each collected node
        assert np.array_equal(fleet.sources[:, 1:], fleet.collected[:, :-1])
        assert np.array_equal(fleet.trajectories[:, 0], fleet.start_nodes)

    def test_every_transition_follows_an_edge(self, gender_csr):
        fleet = BatchedWalkEngine(gender_csr, rng=1).run_fleet(4, 30, burn_in=5)
        for row in fleet.trajectories:
            for u, v in zip(row[:-1], row[1:]):
                assert v in gender_csr.neighbors(int(u))

    def test_per_walker_ledger_matches_python_sets(self, gender_csr):
        fleet = BatchedWalkEngine(gender_csr, rng=2).run_fleet(REPS, K, burn_in=BURN_IN)
        charges = fleet.charged_calls()
        expected = [len(set(row.tolist())) for row in fleet.trajectories]
        assert charges.tolist() == expected

    def test_per_walker_budget_enforced(self, gender_csr):
        with pytest.raises(APIBudgetExceededError):
            BatchedWalkEngine(gender_csr, rng=3, budget=3).run_fleet(4, 50)

    def test_distinct_counts_direct(self):
        trajectories = np.array([[0, 1, 2, 1], [0, 0, 0, 0]])
        assert per_walker_distinct_counts(trajectories).tolist() == [3, 1]


# ----------------------------------------------------------------------
# charged-call parity against the reference wrapper (budget ledger)
# ----------------------------------------------------------------------
class TestChargedCallParity:
    """Replaying a fleet trial through RestrictedGraphAPI must charge the
    same number of API calls the fleet ledger recorded for it."""

    def test_edge_fleet_ledger(self, gender_osn, gender_csr):
        batch = sample_edges_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=BURN_IN, rng=5
        )
        ids = gender_csr.node_ids
        for trial in range(batch.num_trials):
            api = RestrictedGraphAPI(gender_osn)
            for index in batch.trajectories[trial]:
                api.neighbors(ids[int(index)])
            # Edge classification reads labels of walk nodes only: all
            # pages already downloaded, so no further charges.
            assert api.api_calls == int(batch.api_calls[trial])

    def test_node_fleet_ledger(self, gender_osn, gender_csr):
        batch = explore_nodes_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=BURN_IN, rng=6
        )
        ids = gender_csr.node_ids
        for trial in range(batch.num_trials):
            api = RestrictedGraphAPI(gender_osn)
            for index in batch.trajectories[trial]:
                api.neighbors(ids[int(index)])
            # Replay the exploration of each labeled collected node the
            # way the reference sampler does it.
            for index in batch.trajectories[trial][BURN_IN + 1 :]:
                node = ids[int(index)]
                labels = api.labels_of(node)
                if 1 in labels or 2 in labels:
                    for neighbor in api.neighbors(node):
                        api.labels_of(neighbor)
            assert api.api_calls == int(batch.api_calls[trial])

    def test_exploration_ledger_strategies_agree(self, gender_csr, monkeypatch):
        """The dense-mask ledger (small graphs) and the sort-based code
        ledger (paper-scale graphs) must produce identical charges."""
        import repro.core.samplers.csr_backend as csr_backend

        kwargs = dict(k=K, repetitions=REPS, burn_in=BURN_IN, rng=6)
        dense = explore_nodes_fleet(gender_csr, 1, 2, **kwargs)
        monkeypatch.setattr(csr_backend, "_MASK_LEDGER_MAX_CELLS", 0)
        sparse = explore_nodes_fleet(gender_csr, 1, 2, **kwargs)
        assert np.array_equal(dense.trajectories, sparse.trajectories)
        assert np.array_equal(dense.api_calls, sparse.api_calls)

    def test_fleet_budget_crossing_raises(self, gender_csr):
        probe = sample_edges_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=0, rng=7
        )
        tight = int(probe.api_calls.max()) - 1
        with pytest.raises(APIBudgetExceededError):
            sample_edges_fleet(
                gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=0, rng=7, budget=tight
            )

    def test_fleet_budget_loose_enough_passes(self, gender_csr):
        probe = explore_nodes_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=0, rng=8
        )
        batch = explore_nodes_fleet(
            gender_csr,
            1,
            2,
            k=K,
            repetitions=REPS,
            burn_in=0,
            rng=8,
            budget=int(probe.api_calls.max()),
        )
        assert np.array_equal(batch.api_calls, probe.api_calls)


# ----------------------------------------------------------------------
# estimate_batch vs the scalar estimators
# ----------------------------------------------------------------------
class TestBatchEstimators:
    @pytest.fixture(scope="class")
    def edge_batch(self, gender_csr):
        return sample_edges_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=BURN_IN, rng=9
        )

    @pytest.fixture(scope="class")
    def node_batch(self, gender_csr):
        return explore_nodes_fleet(
            gender_csr, 1, 2, k=K, repetitions=REPS, burn_in=BURN_IN, rng=10
        )

    def test_edge_hh_exact(self, edge_batch):
        estimator = EdgeHansenHurwitzEstimator()
        vec = estimator.estimate_batch(edge_batch)
        for trial in range(edge_batch.num_trials):
            scalar = estimator.estimate(edge_batch.sample_set(trial)).estimate
            assert vec[trial] == scalar

    def test_edge_ht_exact(self, edge_batch):
        estimator = EdgeHorvitzThompsonEstimator()
        vec = estimator.estimate_batch(edge_batch)
        for trial in range(edge_batch.num_trials):
            scalar = estimator.estimate(edge_batch.sample_set(trial)).estimate
            assert vec[trial] == scalar

    @pytest.mark.parametrize(
        "estimator_factory",
        [NodeHansenHurwitzEstimator, NodeHorvitzThompsonEstimator, NodeReweightedEstimator],
    )
    def test_node_estimators_close(self, node_batch, estimator_factory):
        estimator = estimator_factory()
        vec = estimator.estimate_batch(node_batch)
        for trial in range(node_batch.num_trials):
            scalar = estimator.estimate(node_batch.sample_set(trial)).estimate
            assert vec[trial] == pytest.approx(scalar, rel=1e-12)

    def test_batch_thinning_matches_sample_set_thinning(self, edge_batch):
        thinned = edge_batch.thinned()
        for trial in (0, edge_batch.num_trials - 1):
            reference = edge_batch.sample_set(trial).thinned()
            materialised = thinned.sample_set(trial)
            assert [s.canonical() for s in materialised.samples] == [
                s.canonical() for s in reference.samples
            ]

    def test_node_ht_rejects_underestimated_edge_prior(self, gender_csr):
        """An |E| prior below max_degree/2 makes degree/2|E| exceed 1;
        the batch path must raise like the scalar path, not return a
        silently wrong estimate."""
        from repro.exceptions import EstimationError

        batch = explore_nodes_fleet(
            gender_csr, 1, 2, k=K, repetitions=3, burn_in=BURN_IN, rng=11,
            known_num_edges=1,
        )
        estimator = NodeHorvitzThompsonEstimator()
        with pytest.raises(EstimationError):
            estimator.estimate_batch(batch)
        with pytest.raises(EstimationError):
            estimator.estimate(batch.sample_set(0))

    def test_ht_no_thinning_variant(self, node_batch):
        estimator = NodeHorvitzThompsonEstimator(thinning_fraction=None)
        vec = estimator.estimate_batch(node_batch)
        for trial in range(node_batch.num_trials):
            scalar = estimator.estimate(node_batch.sample_set(trial)).estimate
            assert vec[trial] == pytest.approx(scalar, rel=1e-12)


# ----------------------------------------------------------------------
# run_trials / compare_algorithms dispatch
# ----------------------------------------------------------------------
class TestFleetExecution:
    @pytest.fixture(scope="class")
    def suite(self, gender_osn):
        return build_algorithm_suite(gender_osn, include_baselines=False)

    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_execution("warp")
        assert "fleet" in EXECUTIONS

    def test_mismatched_csr_rejected_on_fleet_path(self, gender_osn, rare_label_osn, suite):
        """A CSR view frozen from a different graph must be rejected,
        matching the sequential path's adopt_csr guard."""
        wrong_csr = csr_view(rare_label_osn)
        with pytest.raises(ConfigurationError):
            run_trials(
                gender_osn,
                1,
                2,
                suite["NeighborSample-HH"],
                "NeighborSample-HH",
                sample_size=10,
                repetitions=2,
                burn_in=5,
                seed=1,
                csr=wrong_csr,
                execution="fleet",
            )

    def test_unknown_backend_rejected_eagerly_by_harness(self, gender_osn, suite):
        with pytest.raises(ConfigurationError):
            compare_algorithms(
                gender_osn, 1, 2, sample_fractions=[0.02], repetitions=2,
                algorithms=suite, burn_in=5, seed=1, backend="cuda",
            )
        with pytest.raises(ConfigurationError):
            frequency_sweep(
                gender_osn, [(1, 2)], repetitions=2, burn_in=5, seed=1,
                backend="cuda",
            )

    def test_unknown_backend_rejected_on_fleet_path(self, gender_osn, suite):
        with pytest.raises(ConfigurationError):
            run_trials(
                gender_osn,
                1,
                2,
                suite["NeighborSample-HH"],
                "NeighborSample-HH",
                sample_size=10,
                repetitions=2,
                burn_in=5,
                seed=1,
                backend="bogus",
                execution="fleet",
            )

    def test_fleet_reproducible_with_seed(self, gender_osn, suite):
        args = dict(sample_size=40, repetitions=5, burn_in=15, seed=42, execution="fleet")
        first = run_trials(
            gender_osn, 1, 2, suite["NeighborSample-HT"], "NeighborSample-HT", **args
        )
        second = run_trials(
            gender_osn, 1, 2, suite["NeighborSample-HT"], "NeighborSample-HT", **args
        )
        assert first.estimates == second.estimates
        assert first.api_calls == second.api_calls

    def test_fleet_outcome_shape(self, gender_osn, suite):
        outcome = run_trials(
            gender_osn,
            1,
            2,
            suite["NeighborExploration-RW"],
            "NeighborExploration-RW",
            sample_size=40,
            repetitions=5,
            burn_in=15,
            seed=1,
            execution="fleet",
        )
        assert outcome.repetitions == 5
        assert outcome.nrmse >= 0
        assert all(calls > 0 for calls in outcome.api_calls)

    def test_custom_runner_config_honored_on_fleet_path(self, gender_osn, gender_csr):
        """A custom ProposedRunner vectorizes with its *own* estimator
        configuration — it must not be swapped for the registry default
        registered under the same name."""
        from repro.core.pipeline import ProposedRunner

        def no_thinning_ht():
            return EdgeHorvitzThompsonEstimator(thinning_fraction=None)

        custom = ProposedRunner(sampler="edge", estimator_factory=no_thinning_ht)
        args = dict(sample_size=60, repetitions=4, burn_in=10, seed=6)
        fleet = run_trials(
            gender_osn, 1, 2, custom, "NeighborSample-HT", **args, execution="fleet"
        )
        # The fleet walk is deterministic in the seed, so the outcome
        # must equal the custom estimator applied to the same batch.
        import numpy as np
        from repro.utils.rng import ensure_numpy_rng

        batch = sample_edges_fleet(
            gender_csr, 1, 2, k=60, repetitions=4, burn_in=10, rng=ensure_numpy_rng(6)
        )
        expected = no_thinning_ht().estimate_batch(batch)
        assert fleet.estimates == [float(v) for v in expected]
        # ...and differ from the registry (thinned) configuration.
        registry = EdgeHorvitzThompsonEstimator().estimate_batch(batch)
        assert fleet.estimates != [float(v) for v in registry]

    def test_baselines_run_as_line_graph_fleets(self, gender_osn):
        """EX-* cells vectorize now: fleet execution must produce one
        estimate and one independent ledger per repetition (the
        distributional equivalence with the sequential line walk is
        KS-enforced in tests/integration/test_baseline_fleet_equivalence.py)."""
        suite = build_algorithm_suite(gender_osn, algorithms=["EX-RW", "EX-MHRW"])
        args = dict(sample_size=25, repetitions=3, burn_in=10, seed=4)
        for name in suite:
            fleet = run_trials(
                gender_osn, 1, 2, suite[name], name, **args, execution="fleet"
            )
            assert len(fleet.estimates) == 3
            assert all(np.isfinite(fleet.estimates))
            # Line crawls fetch both endpoints per visited edge, so each
            # repetition's ledger must be positive and graph-bounded.
            assert all(0 < calls <= gender_osn.num_nodes for calls in fleet.api_calls)

    def test_handwritten_runners_fall_back_to_sequential(self, gender_osn):
        """Only registry runners vectorize; a bare callable keeps the
        sequential reference loop bit for bit."""
        suite = build_algorithm_suite(gender_osn, algorithms=["EX-RW"])

        def handwritten(api, t1, t2, k, burn_in, rng, backend="python"):
            return suite["EX-RW"](api, t1, t2, k, burn_in, rng)

        args = dict(sample_size=25, repetitions=3, burn_in=10, seed=4)
        sequential = run_trials(
            gender_osn, 1, 2, handwritten, "custom", **args, execution="sequential"
        )
        fleet = run_trials(
            gender_osn, 1, 2, handwritten, "custom", **args, execution="fleet"
        )
        assert fleet.estimates == sequential.estimates
        assert fleet.api_calls == sequential.api_calls


class TestParallelDeterminism:
    def test_same_table_for_any_worker_count(self, gender_osn):
        suite = build_algorithm_suite(gender_osn, include_baselines=False)
        kwargs = dict(
            sample_fractions=[0.02, 0.05],
            repetitions=3,
            algorithms=suite,
            burn_in=12,
            seed=7,
            execution="fleet",
        )
        serial = compare_algorithms(gender_osn, 1, 2, n_jobs=1, **kwargs)
        parallel = compare_algorithms(gender_osn, 1, 2, n_jobs=2, **kwargs)
        assert serial.algorithms() == parallel.algorithms()
        for name in serial.algorithms():
            for column in range(2):
                assert (
                    serial.cells[name][column].estimates
                    == parallel.cells[name][column].estimates
                )
                assert (
                    serial.cells[name][column].api_calls
                    == parallel.cells[name][column].api_calls
                )

    def test_frequency_sweep_parallel_determinism(self, gender_osn):
        pairs = [(1, 2), (1, 1)]
        kwargs = dict(
            budget_fraction=0.03,
            repetitions=3,
            burn_in=12,
            seed=5,
            execution="fleet",
        )
        serial = frequency_sweep(gender_osn, pairs, n_jobs=1, **kwargs)
        parallel = frequency_sweep(gender_osn, pairs, n_jobs=2, **kwargs)
        assert len(serial) == len(parallel)
        for one, two in zip(serial, parallel):
            assert one.target_pair == two.target_pair
            assert one.nrmse_by_algorithm == two.nrmse_by_algorithm

    def test_unpicklable_runner_rejected_for_parallel(self, gender_osn):
        def custom(api, t1, t2, k, burn_in, rng, backend="python"):  # pragma: no cover
            raise AssertionError("never called")

        with pytest.raises(ConfigurationError):
            compare_algorithms(
                gender_osn,
                1,
                2,
                sample_fractions=[0.02],
                repetitions=2,
                algorithms={"my-algo": custom},
                burn_in=10,
                seed=1,
                n_jobs=2,
            )

    def test_tuned_baselines_survive_parallel(self, gender_osn):
        """A tuned suite must give identical tables at any worker count
        (the runner objects themselves cross the process boundary)."""
        suite = build_algorithm_suite(
            gender_osn, algorithms=["EX-RCMH"], rcmh_alpha=0.05
        )
        kwargs = dict(
            sample_fractions=[0.03],
            repetitions=3,
            algorithms=suite,
            burn_in=10,
            seed=13,
        )
        serial = compare_algorithms(gender_osn, 1, 2, n_jobs=1, **kwargs)
        parallel = compare_algorithms(gender_osn, 1, 2, n_jobs=2, **kwargs)
        assert (
            serial.cells["EX-RCMH"][0].estimates
            == parallel.cells["EX-RCMH"][0].estimates
        )
