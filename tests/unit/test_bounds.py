"""Unit tests for the Theorem 4.1-4.5 sample-size bounds."""

import pytest

from repro.core.bounds import (
    bound_neighbor_exploration_hh,
    bound_neighbor_exploration_ht,
    bound_neighbor_exploration_rw,
    bound_neighbor_sample_hh,
    bound_neighbor_sample_ht,
    compute_all_bounds,
)
from repro.exceptions import ConfigurationError, EstimationError
from repro.graph.statistics import count_target_edges


class TestTheorem41:
    def test_closed_form(self, triangle_graph):
        # |E| = 3, F = 2: (3·2 − 4) / (ε² · 4 · δ)
        bound = bound_neighbor_sample_hh(triangle_graph, "a", "b", epsilon=0.5, delta=0.5)
        assert bound == pytest.approx((6 - 4) / (0.25 * 4 * 0.5))

    def test_tighter_epsilon_needs_more_samples(self, gender_osn):
        loose = bound_neighbor_sample_hh(gender_osn, 1, 2, epsilon=0.2, delta=0.1)
        tight = bound_neighbor_sample_hh(gender_osn, 1, 2, epsilon=0.05, delta=0.1)
        assert tight > loose

    def test_zero_target_count_raises(self, triangle_graph):
        with pytest.raises(EstimationError):
            bound_neighbor_sample_hh(triangle_graph, "zz", "qq")

    def test_invalid_epsilon(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            bound_neighbor_sample_hh(triangle_graph, "a", "b", epsilon=0.0)


class TestTheorem42:
    def test_positive(self, triangle_graph):
        assert bound_neighbor_sample_ht(triangle_graph, "a", "b") > 0

    def test_rarer_labels_need_more_samples(self, rare_label_osn):
        from repro.graph.statistics import edge_label_histogram

        histogram = sorted(edge_label_histogram(rare_label_osn).items(), key=lambda i: i[1])
        cross_pairs = [(p, c) for p, c in histogram if p[0] != p[1] and c >= 3]
        rare_pair, _ = cross_pairs[0]
        frequent_pair, _ = cross_pairs[-1]
        rare = bound_neighbor_sample_ht(rare_label_osn, *rare_pair)
        frequent = bound_neighbor_sample_ht(rare_label_osn, *frequent_pair)
        assert rare > frequent


class TestTheorem43:
    def test_non_negative(self, gender_osn):
        assert bound_neighbor_exploration_hh(gender_osn, 1, 2) >= 0

    def test_star_graph_single_sample_suffices(self, star_graph):
        # Sampling the hub alone determines F exactly, so the variance-based
        # bound collapses to (almost) nothing compared to the edge bound.
        ne_bound = bound_neighbor_exploration_hh(star_graph, "hub", "leaf", 0.5, 0.5)
        ns_bound = bound_neighbor_sample_hh(star_graph, "hub", "leaf", 0.5, 0.5)
        assert ne_bound <= ns_bound


class TestTheorem44:
    def test_positive(self, gender_osn):
        assert bound_neighbor_exploration_ht(gender_osn, 1, 2) > 0

    def test_zero_target_count_raises(self, gender_osn):
        with pytest.raises(EstimationError):
            bound_neighbor_exploration_ht(gender_osn, 404, 405)


class TestTheorem45:
    def test_non_negative(self, gender_osn):
        assert bound_neighbor_exploration_rw(gender_osn, 1, 2) >= 0

    def test_second_term_dominates_on_regular_like_graphs(self, gender_osn):
        # The |V|-term of Theorem 4.5 does not depend on the labels, so the
        # bound can never be smaller than that label-independent part.
        from repro.graph.statistics import target_incident_counts

        bound = bound_neighbor_exploration_rw(gender_osn, 1, 2, epsilon=0.1, delta=0.1)
        num_nodes = gender_osn.num_nodes
        sum_inverse_pi = sum(
            2 * gender_osn.num_edges / gender_osn.degree(node) for node in gender_osn.nodes()
        )
        second = 18 * (sum_inverse_pi - num_nodes**2) / (0.01 * num_nodes**2 * 0.1)
        assert bound >= second - 1e-6


class TestAllBounds:
    def test_compute_all_bounds_fields(self, gender_osn):
        bounds = compute_all_bounds(gender_osn, 1, 2, epsilon=0.1, delta=0.1)
        as_dict = bounds.as_dict()
        assert set(as_dict) == {
            "NeighborSample-HH",
            "NeighborSample-HT",
            "NeighborExploration-HH",
            "NeighborExploration-HT",
            "NeighborExploration-RW",
        }
        assert all(value >= 0 for value in as_dict.values())
        assert bounds.true_count == count_target_edges(gender_osn, 1, 2)

    def test_paper_ordering_hh_below_ht(self, gender_osn):
        """In every paper table the HH bound is far below the HT bound."""
        bounds = compute_all_bounds(gender_osn, 1, 2)
        assert bounds.neighbor_sample_hh < bounds.neighbor_sample_ht
        assert bounds.neighbor_exploration_hh < bounds.neighbor_exploration_ht
