"""Unit tests for the Hansen–Hurwitz estimators (Equations 2 and 11)."""

import pytest

from repro.core.estimators import EdgeHansenHurwitzEstimator, NodeHansenHurwitzEstimator
from repro.core.samplers.base import EdgeSample, EdgeSampleSet, NodeSample, NodeSampleSet
from repro.exceptions import EstimationError, InsufficientSamplesError


def edge_set(flags, num_edges):
    samples = [EdgeSample(u=i, v=i + 1, is_target=f, step_index=i) for i, f in enumerate(flags)]
    return EdgeSampleSet(samples=samples, num_edges=num_edges, num_nodes=10)


def node_set(entries, num_edges, num_nodes=10):
    samples = [
        NodeSample(
            node=i, degree=d, has_target_label=t > 0, incident_target_edges=t, step_index=i
        )
        for i, (d, t) in enumerate(entries)
    ]
    return NodeSampleSet(samples=samples, num_edges=num_edges, num_nodes=num_nodes)


class TestEdgeHH:
    def test_formula(self):
        # |E| = 50, 2 of 4 samples are targets -> 50 * 2/4 = 25
        result = EdgeHansenHurwitzEstimator().estimate(edge_set([True, False, True, False], 50))
        assert result.estimate == pytest.approx(25.0)
        assert result.estimator == "NeighborSample-HH"
        assert result.sample_size == 4

    def test_zero_hits_gives_zero(self):
        result = EdgeHansenHurwitzEstimator().estimate(edge_set([False] * 5, 50))
        assert result.estimate == 0.0

    def test_all_hits_gives_num_edges(self):
        result = EdgeHansenHurwitzEstimator().estimate(edge_set([True] * 5, 77))
        assert result.estimate == pytest.approx(77.0)

    def test_empty_sample_raises(self):
        with pytest.raises(InsufficientSamplesError):
            EdgeHansenHurwitzEstimator().estimate(EdgeSampleSet(num_edges=10))

    def test_missing_prior_knowledge_raises(self):
        with pytest.raises(EstimationError):
            EdgeHansenHurwitzEstimator().estimate(edge_set([True], 0))

    def test_details_record_hits(self):
        result = EdgeHansenHurwitzEstimator().estimate(edge_set([True, True, False], 30))
        assert result.details["target_hits"] == 2.0

    def test_relative_error_helper(self):
        result = EdgeHansenHurwitzEstimator().estimate(edge_set([True, False], 100))
        assert result.relative_error(100) == pytest.approx(0.5)
        with pytest.raises(ZeroDivisionError):
            result.relative_error(0)


class TestNodeHH:
    def test_formula(self):
        # |E| = 30, samples: (deg 3, T 1), (deg 5, T 0) -> 30 * (1/3 + 0) / 2 = 5
        result = NodeHansenHurwitzEstimator().estimate(node_set([(3, 1), (5, 0)], 30))
        assert result.estimate == pytest.approx(5.0)
        assert result.estimator == "NeighborExploration-HH"

    def test_zero_when_no_incident_targets(self):
        result = NodeHansenHurwitzEstimator().estimate(node_set([(3, 0), (5, 0)], 30))
        assert result.estimate == 0.0

    def test_exact_on_single_node_covering_everything(self):
        # A node of degree d with T = d among k = 1 samples: estimate = |E| * d/d = |E|
        result = NodeHansenHurwitzEstimator().estimate(node_set([(4, 4)], 12))
        assert result.estimate == pytest.approx(12.0)

    def test_zero_degree_sample_raises(self):
        with pytest.raises(EstimationError):
            NodeHansenHurwitzEstimator().estimate(node_set([(0, 0)], 30))

    def test_empty_sample_raises(self):
        with pytest.raises(InsufficientSamplesError):
            NodeHansenHurwitzEstimator().estimate(NodeSampleSet(num_edges=10, num_nodes=5))

    def test_missing_prior_knowledge_raises(self):
        with pytest.raises(EstimationError):
            NodeHansenHurwitzEstimator().estimate(node_set([(3, 1)], 0))

    def test_details_record_explored(self):
        result = NodeHansenHurwitzEstimator().estimate(node_set([(3, 1), (2, 0), (4, 2)], 30))
        assert result.details["explored_nodes"] == 2.0
