"""The n_jobs graph-store plane: handle shipping, parity, cleanup."""

import glob
import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import CellTask, compare_algorithms, run_cells_parallel
from repro.graph.csr import CSRGraph
from repro.graph.store import save_csr_npz, load_csr_npz


@pytest.fixture(scope="module")
def csr_graph() -> CSRGraph:
    """A small connected CSR graph with binary labels (fast fleet cells)."""
    rng = np.random.default_rng(3)
    hub_edges = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
    random_edges = rng.integers(0, 300, size=(1500, 2))
    edges = np.concatenate([hub_edges, random_edges])
    labels = rng.integers(1, 3, size=300)
    return CSRGraph.from_edge_array(edges, num_nodes=300, label_array=labels)


@pytest.fixture(scope="module")
def proposed_suite(csr_graph):
    suite = build_algorithm_suite(include_baselines=False)
    return {name: suite[name] for name in ("NeighborSample-HH", "NeighborExploration-HH")}


def _table(graph, suite, n_jobs, graph_store):
    return compare_algorithms(
        graph,
        1,
        2,
        sample_fractions=(0.02, 0.05),
        repetitions=5,
        algorithms=suite,
        burn_in=10,
        seed=42,
        execution="fleet",
        n_jobs=n_jobs,
        graph_store=graph_store,
    )


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestStoreParity:
    def test_tables_bit_identical_across_stores_and_jobs(
        self, csr_graph, proposed_suite, tmp_path
    ):
        """Any (store, n_jobs) combination yields the exact same table."""
        reference = _table(csr_graph, proposed_suite, 1, "ram")
        mmap_graph = load_csr_npz(save_csr_npz(csr_graph, tmp_path / "g.npz"))
        variants = [
            _table(csr_graph, proposed_suite, 2, "ram"),
            _table(csr_graph, proposed_suite, 2, "shm"),
            _table(csr_graph, proposed_suite, 3, "shm"),
            _table(mmap_graph, proposed_suite, 2, "mmap"),
            _table(mmap_graph, proposed_suite, 1, "ram"),
        ]
        for table in variants:
            assert table.algorithms() == reference.algorithms()
            for name in reference.algorithms():
                for ours, theirs in zip(table.cells[name], reference.cells[name]):
                    assert ours.estimates == theirs.estimates
                    assert ours.api_calls == theirs.api_calls

    def test_no_segments_leaked_by_successful_runs(self, csr_graph, proposed_suite):
        before = _shm_segments()
        _table(csr_graph, proposed_suite, 2, "shm")
        assert _shm_segments() == before


class TestStoreErrors:
    def test_dict_graph_rejects_external_store(self, gender_osn):
        suite = build_algorithm_suite(include_baselines=False)
        with pytest.raises(ConfigurationError, match="graph_store"):
            compare_algorithms(
                gender_osn,
                1,
                2,
                sample_fractions=(0.02,),
                repetitions=2,
                algorithms=suite,
                burn_in=5,
                seed=1,
                n_jobs=2,
                graph_store="shm",
            )

    def test_unknown_store_rejected(self, csr_graph, proposed_suite):
        with pytest.raises(ConfigurationError, match="unknown graph store"):
            _table(csr_graph, proposed_suite, 2, "tape")

    def test_worker_error_does_not_leak_segments(self, csr_graph, proposed_suite):
        """A cell that dies in the worker still releases the published segment."""
        before = _shm_segments()
        cells = [
            CellTask(
                algorithm="not-in-the-suite",
                column=0,
                sample_size=5,
                seed=1,
                t1=1,
                t2=2,
                repetitions=2,
                burn_in=2,
                true_count=10,
                backend="python",
                execution="fleet",
            )
        ]
        with pytest.raises(KeyError):
            run_cells_parallel(
                csr_graph, proposed_suite, cells, 2, None, graph_store="shm"
            )
        assert _shm_segments() == before

    def test_unpicklable_suite_probed_before_publishing(self, csr_graph):
        """Closure suites fail fast, without leaking a published segment."""
        before = _shm_segments()
        closure_suite = {"closure": lambda *args, **kwargs: None}
        cells = [
            CellTask(
                algorithm="closure",
                column=0,
                sample_size=5,
                seed=1,
                t1=1,
                t2=2,
                repetitions=2,
                burn_in=2,
                true_count=10,
                backend="python",
                execution="fleet",
            )
        ]
        with pytest.raises(ConfigurationError, match="picklable"):
            run_cells_parallel(
                csr_graph, closure_suite, cells, 2, None, graph_store="shm"
            )
        assert _shm_segments() == before


class TestHandleShipping:
    def test_mmap_dataset_ships_as_o1_handle(self, csr_graph, tmp_path):
        """The pool initargs payload for an mmap graph is the handle, not bytes."""
        mmap_graph = load_csr_npz(save_csr_npz(csr_graph, tmp_path / "g.npz"))
        assert len(pickle.dumps(mmap_graph)) < 1024
        ram_blob = pickle.dumps(csr_graph)
        assert len(ram_blob) > 10 * 1024  # the by-value pickle it replaces


class TestWarmCacheShipping:
    def test_reused_handle_ships_parent_caches_by_value(self, csr_graph, tmp_path):
        """An already-mmap-backed graph keeps its cache-less handle on
        republication; the runner must hand the parent's derived caches
        to workers instead of letting each re-stream the adjacency."""
        from repro.experiments.runner import _WORKER_STATE, _init_cell_worker
        from repro.graph.store import publish_csr

        mmap_graph = load_csr_npz(save_csr_npz(csr_graph, tmp_path / "g.npz"))
        truth = mmap_graph.count_target_edges(1, 2)  # parent-side classification
        publication = publish_csr(mmap_graph, "mmap")
        assert not publication.owns_resource  # reused the existing handle
        assert publication.handle.target_counts == ()  # which carries no caches
        exported = mmap_graph.export_label_caches()
        saved_state = dict(_WORKER_STATE)
        try:
            _init_cell_worker(
                publication.handle, pickle.dumps({}), True, exported
            )
            worker_graph = _WORKER_STATE["graph"]
            assert worker_graph._target_count_cache[(1, 2)] == truth
            assert 1 in worker_graph._mask_cache
            assert (1, 2) in worker_graph._incident_cache
        finally:
            _WORKER_STATE.clear()
            _WORKER_STATE.update(saved_state)
        publication.unlink()  # non-owning: must leave the sidecar alone
        assert (tmp_path / "g.npz").exists()

    def test_mmap_store_tables_still_bit_identical(self, csr_graph, proposed_suite, tmp_path):
        mmap_graph = load_csr_npz(save_csr_npz(csr_graph, tmp_path / "g2.npz"))
        mmap_graph.count_target_edges(1, 2)  # warm before the pool runs
        reference = _table(csr_graph, proposed_suite, 1, "ram")
        table = _table(mmap_graph, proposed_suite, 2, "mmap")
        for name in reference.algorithms():
            for ours, theirs in zip(table.cells[name], reference.cells[name]):
                assert ours.estimates == theirs.estimates
