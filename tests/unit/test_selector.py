"""Unit tests for the adaptive algorithm selector (paper §5.3 guidance)."""

import pytest

from repro.core.selector import (
    DEFAULT_RARITY_THRESHOLD,
    estimate_with_adaptive_selection,
    recommend_algorithm,
)
from repro.exceptions import ConfigurationError
from repro.graph.statistics import count_target_edges, target_edge_fraction


class TestRecommendAlgorithm:
    def test_abundant_labels_get_neighbor_sample(self):
        assert recommend_algorithm(0.40) == "NeighborSample-HH"

    def test_rare_labels_get_neighbor_exploration(self):
        assert recommend_algorithm(0.001) == "NeighborExploration-HH"

    def test_threshold_boundary(self):
        assert recommend_algorithm(DEFAULT_RARITY_THRESHOLD) == "NeighborSample-HH"

    def test_custom_threshold(self):
        assert recommend_algorithm(0.02, threshold=0.01) == "NeighborSample-HH"
        assert recommend_algorithm(0.02, threshold=0.1) == "NeighborExploration-HH"

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            recommend_algorithm(-0.1)
        with pytest.raises(ConfigurationError):
            recommend_algorithm(0.1, threshold=0.0)


class TestAdaptiveEstimation:
    def test_abundant_pair_selects_neighbor_sample(self, gender_osn):
        report = estimate_with_adaptive_selection(
            gender_osn, 1, 2, sample_size=200, burn_in=40, seed=5
        )
        assert report.selected_algorithm == "NeighborSample-HH"
        # the true fraction really is above the threshold
        assert target_edge_fraction(gender_osn, 1, 2) > report.threshold
        truth = count_target_edges(gender_osn, 1, 2)
        assert report.estimate == pytest.approx(truth, rel=0.5)

    def test_rare_pair_selects_neighbor_exploration(self, rare_label_osn):
        from repro.graph.statistics import edge_label_histogram

        histogram = sorted(
            (item for item in edge_label_histogram(rare_label_osn).items() if item[0][0] != item[0][1]),
            key=lambda item: item[1],
        )
        rare_pair, _ = histogram[len(histogram) // 4]
        report = estimate_with_adaptive_selection(
            rare_label_osn, rare_pair[0], rare_pair[1], sample_size=200, burn_in=40, seed=6
        )
        assert report.selected_algorithm == "NeighborExploration-HH"

    def test_budget_split(self, gender_osn):
        report = estimate_with_adaptive_selection(
            gender_osn, 1, 2, sample_size=100, pilot_share=0.3, burn_in=20, seed=7
        )
        assert report.pilot_sample_size == 30
        assert report.main_sample_size == 70
        assert report.result.sample_size == 70

    def test_report_fields(self, gender_osn):
        report = estimate_with_adaptive_selection(
            gender_osn, 1, 2, sample_size=80, burn_in=20, seed=8
        )
        assert report.pilot_estimate >= 0
        assert 0 <= report.pilot_relative_count
        assert report.threshold == DEFAULT_RARITY_THRESHOLD
        assert report.estimate == report.result.estimate

    def test_burn_in_derived_when_omitted(self, gender_osn):
        report = estimate_with_adaptive_selection(gender_osn, 1, 2, sample_size=60, seed=9)
        assert report.estimate >= 0

    def test_invalid_sample_size(self, gender_osn):
        with pytest.raises(ConfigurationError):
            estimate_with_adaptive_selection(gender_osn, 1, 2, sample_size=0, burn_in=5)

    def test_reproducible(self, gender_osn):
        first = estimate_with_adaptive_selection(gender_osn, 1, 2, sample_size=80, burn_in=20, seed=11)
        second = estimate_with_adaptive_selection(gender_osn, 1, 2, sample_size=80, burn_in=20, seed=11)
        assert first.estimate == second.estimate
        assert first.selected_algorithm == second.selected_algorithm
