"""The docs subsystem stays healthy: links resolve, snippets run.

Wraps ``scripts/check_docs.py`` so the fast tier (and CI's docs job)
fails whenever a rename strands a link in README/docs or a ``>>>``
snippet stops matching the code.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs  # noqa: E402


def test_doc_files_exist():
    names = {path.name for path in check_docs.doc_files()}
    assert {"README.md", "architecture.md", "algorithms.md", "scaling-guide.md"} <= names


def test_internal_links_resolve():
    failures = []
    for path in check_docs.doc_files():
        failures.extend(check_docs.check_links(path))
    assert not failures, "\n".join(failures)


def test_doc_snippets_run():
    failures = []
    for path in check_docs.doc_files():
        failures.extend(check_docs.check_doctests(path))
    assert not failures, "\n".join(failures)


def test_link_checker_catches_breakage(tmp_path, monkeypatch):
    """The checker itself must flag a broken link (guards against the
    regexes silently matching nothing)."""
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](no/such/file.md) and `src/repro/nope.py`")
    failures = check_docs.check_links(bad)
    assert len(failures) == 2
