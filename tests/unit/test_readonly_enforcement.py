"""Read-only enforcement: published/attached graphs must refuse mutation.

The version-keyed caches (the CSR view cache, ground-truth counts, the
serving layer's answer cache) are only sound if a published graph
cannot change underneath them.  Before this suite's subject existed,
mutating a published :class:`LabeledGraph` silently bumped ``version``
while live workers kept serving the old buffers — the stale-answer
hazard the service-layer PR fixes.  Now:

* :meth:`LabeledGraph.freeze` makes every mutator raise
  :class:`GraphError` (and the estimation service freezes its source
  graph at publish time);
* :meth:`CSRGraph.seal_buffers` clears the numpy ``WRITEABLE`` flag on
  the CSR arrays, and :func:`publish_csr` seals the publisher's copy —
  a post-publish in-place write raises ``ValueError`` at the write
  site;
* attached graphs were already read-only (shm views / ``mode="r"``
  memmaps); the :attr:`CSRGraph.sealed` marker now says so explicitly.
"""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.store import attach_csr, publish_csr


@pytest.fixture
def small_graph() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    graph.add_edge(2, 3)
    for node in (0, 1):
        graph.set_labels(node, [1])
    for node in (2, 3):
        graph.set_labels(node, [2])
    return graph


def _array_csr(num_nodes: int = 4) -> CSRGraph:
    graph = LabeledGraph()
    for u in range(num_nodes):
        graph.add_edge(u, (u + 1) % num_nodes)
    csr = csr_view(graph)
    labels = np.arange(num_nodes, dtype=np.int64) % 2 + 1
    return CSRGraph(
        np.arange(num_nodes, dtype=np.int64),
        csr.indptr.copy(),
        csr.indices.copy(),
        label_array=labels,
    )


class TestFreezeLabeledGraph:
    def test_every_mutator_raises_after_freeze(self, small_graph):
        small_graph.freeze("test publication")
        version = small_graph.version
        with pytest.raises(GraphError, match="test publication"):
            small_graph.add_node(99)
        with pytest.raises(GraphError, match="read-only"):
            small_graph.add_edge(0, 3)
        with pytest.raises(GraphError, match="read-only"):
            small_graph.set_labels(0, [5])
        with pytest.raises(GraphError, match="read-only"):
            small_graph.add_label(0, 5)
        with pytest.raises(GraphError, match="read-only"):
            small_graph.remove_node(0)
        # The failed mutations must not have bumped the version either.
        assert small_graph.version == version

    def test_freeze_is_idempotent_and_keeps_first_reason(self, small_graph):
        small_graph.freeze("first owner")
        small_graph.freeze("second owner")
        assert small_graph.frozen == "first owner"

    def test_reads_still_work_after_freeze(self, small_graph):
        small_graph.freeze()
        assert small_graph.num_nodes == 4
        assert small_graph.num_edges == 4
        assert small_graph.labels_of(2) == frozenset({2})

    def test_copy_of_frozen_graph_is_mutable(self, small_graph):
        small_graph.freeze("published")
        clone = small_graph.copy()
        assert clone.frozen is None
        assert clone.add_edge(0, 3)
        assert small_graph.num_edges == 4


class TestMutationAfterPublish:
    def test_publish_seals_the_publishers_buffers(self):
        csr = _array_csr()
        assert csr.sealed is None
        with publish_csr(csr, "shm"):
            assert csr.sealed == "published to shm"
            with pytest.raises(ValueError, match="read-only"):
                csr.indices[0] = 99
            with pytest.raises(ValueError, match="read-only"):
                csr.label_array()[0] = 99

    def test_mmap_publish_seals_too(self, tmp_path):
        csr = _array_csr()
        with publish_csr(csr, "mmap", directory=tmp_path):
            with pytest.raises(ValueError, match="read-only"):
                csr.indptr[0] = 1

    def test_republish_of_backed_graph_stays_sealed(self, tmp_path):
        csr = _array_csr()
        with publish_csr(csr, "mmap", directory=tmp_path) as publication:
            attached = attach_csr(publication.handle)
            again = publish_csr(attached, "mmap")
            assert not again.owns_resource
            assert attached.sealed is not None

    def test_frozen_dict_graph_blocks_the_stale_view_hazard(self, small_graph):
        # csr_view caches by version; mutating after a view was taken
        # would silently invalidate it.  Freeze + mutate now raises
        # before the version can move.
        view = csr_view(small_graph)
        small_graph.freeze("served")
        with pytest.raises(GraphError):
            small_graph.add_edge(1, 3)
        assert csr_view(small_graph) is view


class TestMutationAfterAttach:
    def test_shm_attachment_is_read_only(self):
        csr = _array_csr()
        with publish_csr(csr, "shm") as publication:
            attached = publication.attach()
            assert attached.sealed == "attached from shm"
            with pytest.raises(ValueError, match="read-only"):
                attached.indices[0] = 99
            with pytest.raises(ValueError, match="read-only"):
                attached.label_array()[0] = 99

    def test_mmap_attachment_is_read_only(self, tmp_path):
        csr = _array_csr()
        with publish_csr(csr, "mmap", directory=tmp_path) as publication:
            attached = publication.attach()
            assert attached.sealed == "attached from mmap"
            with pytest.raises(ValueError, match="read-only"):
                attached.indptr[0] = 1

    def test_attached_graph_still_walks_and_classifies(self):
        csr = _array_csr(6)
        with publish_csr(csr, "shm") as publication:
            attached = publication.attach()
            assert attached.count_target_edges(1, 2) == csr.count_target_edges(1, 2)
            assert np.array_equal(attached.label_mask(1), csr.label_mask(1))
