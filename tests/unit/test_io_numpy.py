"""Numpy fast-path loaders: loadtxt/fromfile parsing and .npz caching."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graph.io import (
    load_edge_array,
    load_edge_list,
    load_edge_list_csr,
    save_edge_array,
)


@pytest.fixture
def edge_file(tmp_path):
    rng = np.random.default_rng(1)
    edges = rng.integers(0, 150, size=(500, 2))
    path = tmp_path / "edges.txt"
    lines = ["# SNAP-style comment"] + [f"{u}\t{v}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n")
    return path, edges


class TestLoadEdgeArray:
    def test_parses_text(self, edge_file):
        path, edges = edge_file
        assert np.array_equal(load_edge_array(path), edges)

    def test_binary_round_trip(self, tmp_path):
        edges = np.array([[1, 2], [3, 4], [5, 6]])
        path = tmp_path / "edges.bin"
        save_edge_array(edges, path)
        assert np.array_equal(load_edge_array(path), edges)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_edge_array(tmp_path / "nope.txt")

    def test_non_integer_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            load_edge_array(path)

    def test_odd_binary_file(self, tmp_path):
        path = tmp_path / "odd.bin"
        np.array([1, 2, 3], dtype=np.int64).tofile(path)
        with pytest.raises(DatasetError):
            load_edge_array(path)


class TestLoadEdgeListCSR:
    def test_matches_reference_loader(self, edge_file):
        path, _ = edge_file
        reference = load_edge_list(path)
        fast = load_edge_list_csr(path)
        assert fast.num_nodes == reference.num_nodes
        assert fast.num_edges == reference.num_edges
        assert set(fast.node_id_list()) == set(reference.nodes())
        for index, node in enumerate(fast.node_id_list()):
            fast_row = {fast.node_ids[j] for j in fast.neighbors(index).tolist()}
            assert fast_row == set(reference.neighbors(node))

    def test_without_component_filter(self, tmp_path):
        path = tmp_path / "two.txt"
        path.write_text("0 1\n2 3\n4 5\n6 7\n8 9\n")
        full = load_edge_list_csr(path, keep_largest_component=False)
        assert full.num_nodes == 10 and full.num_edges == 5

    def test_npz_cache_written_and_reused(self, edge_file):
        path, _ = edge_file
        first = load_edge_list_csr(path, cache=True)
        sidecar = path.with_name(path.name + ".npz")
        assert sidecar.exists()
        # Delete the original; the cache is all there is and must serve.
        path.unlink()
        cached = load_edge_list_csr(path, cache=True)
        assert cached.num_nodes == first.num_nodes
        assert np.array_equal(cached.indices, first.indices)
        assert cached.node_id_list() == first.node_id_list()

    def test_same_second_rewrite_cannot_serve_stale_mmap_sidecar(self, tmp_path):
        # Regression: the old check compared second-resolution st_mtime
        # with >=, so a source rewritten twice within one second kept
        # serving the first rewrite's memory-mapped sidecar.
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        first = load_edge_list_csr(path, cache=True, mmap=True)
        assert first.num_nodes == 3
        path.write_text("0 1\n1 2\n2 3\n3 0\n")
        second = load_edge_list_csr(path, cache=True, mmap=True)
        assert second.num_nodes == 4
        assert second.store == "mmap"

    def test_rewritten_source_invalidates_cache(self, edge_file):
        path, _ = edge_file
        load_edge_list_csr(path, cache=True)
        # Rewriting the source must invalidate the sidecar — even when
        # the rewrite lands within the same second (the fingerprint is
        # st_mtime_ns + size, not the old second-resolution mtime).
        path.write_text("not an edge list")
        with pytest.raises(DatasetError):
            load_edge_list_csr(path, cache=True)

    def test_explicit_cache_path(self, edge_file, tmp_path):
        path, _ = edge_file
        sidecar = tmp_path / "cache" / "edges.npz"
        load_edge_list_csr(path, cache=sidecar)
        assert sidecar.exists()

    def test_cache_respects_component_setting(self, tmp_path):
        path = tmp_path / "two.txt"
        path.write_text("0 1\n1 2\n5 6\n")
        raw = load_edge_list_csr(path, keep_largest_component=False, cache=True)
        assert raw.num_nodes == 5
        # The other setting must not be served the raw cache.
        cleaned = load_edge_list_csr(path, keep_largest_component=True, cache=True)
        assert cleaned.num_nodes == 3
        assert load_edge_list_csr(
            path, keep_largest_component=True, cache=True
        ).num_nodes == 3

    def test_stale_cache_rebuilt(self, edge_file):
        import os

        path, _ = edge_file
        sidecar = path.with_name(path.name + ".npz")
        first = load_edge_list_csr(path, cache=True)
        path.write_text("0 1\n1 2\n")
        os.utime(path, (sidecar.stat().st_mtime + 10, sidecar.stat().st_mtime + 10))
        rebuilt = load_edge_list_csr(path, cache=True)
        assert rebuilt.num_nodes == 3
        assert rebuilt.num_nodes != first.num_nodes


class TestMemoryMappedSidecar:
    def test_mmap_requires_a_sidecar(self, edge_file):
        path, _ = edge_file
        with pytest.raises(DatasetError, match="sidecar"):
            load_edge_list_csr(path, mmap=True)

    def test_mmap_open_is_memmap_native(self, edge_file):
        path, _ = edge_file
        reference = load_edge_list_csr(path, cache=True)
        mapped = load_edge_list_csr(path, cache=True, mmap=True)
        assert mapped.store == "mmap"
        backing = (
            mapped.indices
            if isinstance(mapped.indices, np.memmap)
            else mapped.indices.base
        )
        assert isinstance(backing, np.memmap)
        assert np.array_equal(mapped.indptr, reference.indptr)
        assert np.array_equal(mapped.indices, reference.indices)
        assert mapped.node_id_list() == reference.node_id_list()

    def test_mmap_writes_sidecar_on_first_load(self, edge_file):
        path, _ = edge_file
        sidecar = path.with_name(path.name + ".npz")
        assert not sidecar.exists()
        mapped = load_edge_list_csr(path, cache=True, mmap=True)
        assert sidecar.exists()
        assert mapped.store == "mmap"

    def test_stale_sidecar_invalidated_for_mmap(self, edge_file):
        import os

        path, _ = edge_file
        sidecar = path.with_name(path.name + ".npz")
        first = load_edge_list_csr(path, cache=True, mmap=True)
        path.write_text("0 1\n1 2\n")
        os.utime(path, (sidecar.stat().st_mtime + 10, sidecar.stat().st_mtime + 10))
        rebuilt = load_edge_list_csr(path, cache=True, mmap=True)
        assert rebuilt.num_nodes == 3
        assert rebuilt.num_nodes != first.num_nodes

    def test_mmap_respects_component_setting(self, tmp_path):
        path = tmp_path / "two.txt"
        path.write_text("0 1\n1 2\n5 6\n")
        raw = load_edge_list_csr(path, keep_largest_component=False, cache=True, mmap=True)
        assert raw.num_nodes == 5
        cleaned = load_edge_list_csr(path, keep_largest_component=True, cache=True, mmap=True)
        assert cleaned.num_nodes == 3
