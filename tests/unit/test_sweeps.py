"""Unit tests for the sample-size and frequency sweeps."""

import pytest

from repro.datasets.registry import select_target_pairs
from repro.experiments.algorithms import PAPER_ALGORITHM_ORDER, build_algorithm_suite
from repro.experiments.sweeps import FrequencyPoint, frequency_sweep, sample_size_sweep


class TestSampleSizeSweep:
    def test_returns_table(self, gender_osn):
        suite = build_algorithm_suite(gender_osn, include_baselines=False)
        table = sample_size_sweep(
            gender_osn,
            1,
            2,
            sample_fractions=[0.02, 0.05],
            repetitions=3,
            algorithms={"NeighborSample-HH": suite["NeighborSample-HH"]},
            burn_in=15,
            seed=5,
        )
        assert table.sample_fractions == [0.02, 0.05]
        assert "NeighborSample-HH" in table.cells


class TestFrequencySweep:
    @pytest.fixture(scope="class")
    def points(self, rare_label_osn):
        pairs = select_target_pairs(rare_label_osn, count=3, min_target_edges=5)
        return frequency_sweep(
            rare_label_osn,
            pairs,
            budget_fraction=0.05,
            repetitions=3,
            burn_in=20,
            seed=9,
        )

    def test_points_sorted_by_frequency(self, points):
        frequencies = [point.relative_count for point in points]
        assert frequencies == sorted(frequencies)

    def test_each_point_covers_proposed_algorithms(self, points):
        for point in points:
            assert set(point.nrmse_by_algorithm) == set(PAPER_ALGORITHM_ORDER)
            assert all(value >= 0 for value in point.nrmse_by_algorithm.values())

    def test_true_counts_positive(self, points):
        assert all(point.true_count > 0 for point in points)

    def test_zero_count_pairs_skipped(self, rare_label_osn):
        points = frequency_sweep(
            rare_label_osn,
            [(999, 998)],
            budget_fraction=0.02,
            repetitions=2,
            burn_in=10,
            seed=1,
        )
        assert points == []

    def test_point_dataclass(self):
        point = FrequencyPoint(target_pair=(1, 2), true_count=10, relative_count=0.01)
        assert point.nrmse_by_algorithm == {}
