"""Unit tests for the sample-set containers."""

import pytest

from repro.core.samplers.base import EdgeSample, EdgeSampleSet, NodeSample, NodeSampleSet
from repro.exceptions import InsufficientSamplesError


def make_edge_set(flags, num_edges=100):
    samples = [
        EdgeSample(u=i, v=i + 1, is_target=flag, step_index=i) for i, flag in enumerate(flags)
    ]
    return EdgeSampleSet(samples=samples, num_edges=num_edges, num_nodes=50)


def make_node_set(entries, num_edges=100, num_nodes=50):
    samples = [
        NodeSample(
            node=i,
            degree=degree,
            has_target_label=incident > 0,
            incident_target_edges=incident,
            step_index=i,
        )
        for i, (degree, incident) in enumerate(entries)
    ]
    return NodeSampleSet(samples=samples, num_edges=num_edges, num_nodes=num_nodes)


class TestEdgeSample:
    def test_canonical_is_order_independent(self):
        a = EdgeSample(u=2, v=1, is_target=True)
        b = EdgeSample(u=1, v=2, is_target=True)
        assert a.canonical() == b.canonical()

    def test_canonical_mixed_types(self):
        sample = EdgeSample(u="b", v="a", is_target=False)
        assert sample.canonical() == ("a", "b")


class TestEdgeSampleSet:
    def test_len_iter_and_k(self):
        sample_set = make_edge_set([True, False, True])
        assert len(sample_set) == 3
        assert sample_set.k == 3
        assert sum(1 for _ in sample_set) == 3

    def test_target_samples(self):
        sample_set = make_edge_set([True, False, True])
        assert len(sample_set.target_samples()) == 2

    def test_require_non_empty(self):
        with pytest.raises(InsufficientSamplesError):
            EdgeSampleSet(num_edges=5).require_non_empty()

    def test_thinned_keeps_spaced_samples(self):
        sample_set = make_edge_set([True] * 100)
        thinned = sample_set.thinned(fraction=0.1)
        assert thinned.k == 10
        assert thinned.num_edges == sample_set.num_edges
        assert [s.step_index for s in thinned.samples] == list(range(0, 100, 10))

    def test_thinned_preserves_metadata(self):
        sample_set = make_edge_set([True, False])
        sample_set.target_labels = ("a", "b")
        sample_set.api_calls_used = 42
        thinned = sample_set.thinned()
        assert thinned.target_labels == ("a", "b")
        assert thinned.api_calls_used == 42


class TestNodeSampleSet:
    def test_labeled_samples(self):
        sample_set = make_node_set([(3, 1), (2, 0), (5, 2)])
        assert len(sample_set.labeled_samples()) == 2

    def test_k(self):
        assert make_node_set([(3, 1)]).k == 1

    def test_require_non_empty(self):
        with pytest.raises(InsufficientSamplesError):
            NodeSampleSet(num_edges=5, num_nodes=5).require_non_empty()

    def test_thinned(self):
        sample_set = make_node_set([(3, 1)] * 40)
        thinned = sample_set.thinned(fraction=0.25)
        assert thinned.k == 4
        assert thinned.num_nodes == 50
