"""Unit tests for the line-graph transform and its lazy API view."""

import pytest

from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.line_graph import LineGraphAPI, LineGraphNode, build_line_graph, edge_is_target
from repro.graph.statistics import count_target_edges


class TestLineGraphNode:
    def test_canonical_order(self):
        assert LineGraphNode.from_edge(2, 1) == LineGraphNode.from_edge(1, 2)

    def test_endpoints(self):
        node = LineGraphNode.from_edge(5, 3)
        assert set(node.endpoints()) == {3, 5}

    def test_shares_endpoint(self):
        a = LineGraphNode.from_edge(1, 2)
        b = LineGraphNode.from_edge(2, 3)
        c = LineGraphNode.from_edge(4, 5)
        assert a.shares_endpoint(b)
        assert not a.shares_endpoint(c)

    def test_hashable_and_usable_as_graph_node(self):
        nodes = {LineGraphNode.from_edge(1, 2), LineGraphNode.from_edge(2, 1)}
        assert len(nodes) == 1


class TestEdgeIsTarget:
    def test_both_orientations(self):
        assert edge_is_target(frozenset({"a"}), frozenset({"b"}), "a", "b")
        assert edge_is_target(frozenset({"b"}), frozenset({"a"}), "a", "b")

    def test_negative(self):
        assert not edge_is_target(frozenset({"a"}), frozenset({"a"}), "a", "b")

    def test_same_label_pair(self):
        assert edge_is_target(frozenset({"a"}), frozenset({"a"}), "a", "a")


class TestBuildLineGraph:
    def test_triangle_line_graph_is_triangle(self, triangle_graph):
        line = build_line_graph(triangle_graph, "a", "b")
        assert line.num_nodes == 3
        assert line.num_edges == 3

    def test_star_line_graph_is_complete(self, star_graph):
        line = build_line_graph(star_graph, "hub", "leaf")
        # 5 edges sharing the hub -> K5 with 10 edges
        assert line.num_nodes == 5
        assert line.num_edges == 10

    def test_target_labels_match_target_edges(self, triangle_graph):
        line = build_line_graph(triangle_graph, "a", "b")
        target_nodes = [n for n in line.nodes() if line.has_label(n, "target")]
        assert len(target_nodes) == count_target_edges(triangle_graph, "a", "b")

    def test_path_line_graph(self, path_graph):
        line = build_line_graph(path_graph, "x", "y")
        assert line.num_nodes == 3
        assert line.num_edges == 2


class TestLineGraphAPI:
    @pytest.fixture
    def line_api(self, triangle_graph):
        return LineGraphAPI(RestrictedGraphAPI(triangle_graph), "a", "b")

    def test_num_nodes_equals_num_edges_of_g(self, line_api, triangle_graph):
        assert line_api.num_nodes == triangle_graph.num_edges

    def test_degree_formula(self, line_api):
        node = LineGraphNode.from_edge(1, 2)
        assert line_api.degree(node) == 2 + 2 - 2

    def test_neighbors_match_materialised_line_graph(self, triangle_graph, line_api):
        materialised = build_line_graph(triangle_graph, "a", "b")
        node = LineGraphNode.from_edge(1, 2)
        lazy = set(line_api.neighbors(node))
        exact = set(materialised.neighbors(node))
        assert lazy == exact

    def test_neighbors_exclude_self(self, line_api):
        node = LineGraphNode.from_edge(1, 2)
        assert node not in line_api.neighbors(node)

    def test_is_target(self, line_api):
        assert line_api.is_target(LineGraphNode.from_edge(1, 3))
        assert not line_api.is_target(LineGraphNode.from_edge(1, 2))

    def test_random_node_is_valid_edge(self, triangle_graph, line_api):
        node = line_api.random_node(rng=5)
        u, v = node.endpoints()
        assert triangle_graph.has_edge(u, v)

    def test_api_calls_are_charged_on_original_api(self, triangle_graph):
        api = RestrictedGraphAPI(triangle_graph)
        line_api = LineGraphAPI(api, "a", "b")
        line_api.neighbors(LineGraphNode.from_edge(1, 2))
        assert api.api_calls > 0

    def test_star_lazy_neighbors(self, star_graph):
        line_api = LineGraphAPI(RestrictedGraphAPI(star_graph), "hub", "leaf")
        node = LineGraphNode.from_edge(0, 1)
        assert len(line_api.neighbors(node)) == 4
