"""The durability layer: atomic writes, manifests, journals, snapshots.

The contract under test is crash consistency: a writer killed at any
instruction leaves either the old artifact (intact) or the new one
(complete), never a torn hybrid; every durable read refuses corrupt
bytes with a typed :class:`~repro.exceptions.ArtifactCorruptError`
instead of walking them.  The writer-kill test SIGKILLs a real
subprocess mid-``write_npz`` and asserts the target survived — that is
the satellite acceptance probe for the torn-sidecar fix.
"""

import os
import signal
import subprocess
import sys
import textwrap
import zipfile

import numpy as np
import pytest

from repro.durability import (
    JOURNAL_SUFFIX,
    SCRATCH_PATTERN,
    ExperimentJournal,
    atomic_write,
    atomic_write_bytes,
    graph_fingerprint,
    journal_is_committed,
    read_blob,
    read_manifest,
    read_records,
    reset_artifact_counters,
    artifact_counters,
    scratch_path,
    suite_fingerprint,
    verify_artifact,
    write_blob,
    write_npz,
)
from repro.exceptions import (
    ArtifactCorruptError,
    ConfigurationError,
    ExperimentError,
)
from repro.graph.csr import CSRGraph
from repro.graph.store import sweep_orphan_spills
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    install_injector,
)


@pytest.fixture(autouse=True)
def _clean_injector_and_counters():
    previous = install_injector(None)
    reset_artifact_counters()
    yield
    install_injector(previous)


def _arrays():
    return {
        "indptr": np.arange(0, 33, 4, dtype=np.int64),
        "indices": np.arange(32, dtype=np.int32),
    }


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        # Overwrite is equally atomic and leaves no scratch behind.
        atomic_write_bytes(target, b"payload-2")
        assert target.read_bytes() == b"payload-2"
        assert list(tmp_path.iterdir()) == [target]

    def test_scratch_names_match_the_sweep_pattern(self, tmp_path):
        scratch = scratch_path(tmp_path / "artifact.npz")
        match = SCRATCH_PATTERN.match(scratch.name)
        assert match is not None
        assert int(match.group("pid")) == os.getpid()

    def test_failing_writer_leaves_target_and_no_scratch(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"old")

        def writer(scratch):
            scratch.write_bytes(b"half-written")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(target, writer)
        assert target.read_bytes() == b"old"
        assert list(tmp_path.iterdir()) == [target]

    def test_sigkilled_writer_leaves_target_intact(self, tmp_path):
        """The writer-kill regression: SIGKILL mid-write tears nothing.

        The child overwrites an existing ``.npz`` through
        :func:`write_npz`, but its writer callback signals readiness and
        stalls before the commit step — exactly the window where the old
        in-place ``np.savez`` used to leave a torn file.
        """
        target = tmp_path / "spill.npz"
        write_npz(target, _arrays())
        before = target.read_bytes()

        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                textwrap.dedent(
                    """
                    import sys, time
                    import numpy as np
                    from repro.durability import atomic
                    from repro.durability.manifest import write_npz

                    original = atomic.commit_scratch

                    def stalled(scratch, target):
                        print("mid-write", flush=True)
                        time.sleep(60)
                        original(scratch, target)

                    atomic.commit_scratch = stalled
                    write_npz(
                        sys.argv[1],
                        {"indptr": np.zeros(9, dtype=np.int64),
                         "indices": np.zeros(0, dtype=np.int32)},
                    )
                    """
                ),
                str(target),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=dict(os.environ, PYTHONPATH="src"),
        )
        try:
            assert child.stdout.readline().strip() == "mid-write"
            child.kill()
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
            child.stdout.close()
        assert child.returncode == -signal.SIGKILL

        # Old artifact byte-identical, and it still verifies.
        assert target.read_bytes() == before
        assert verify_artifact(target, mode="full") == "verified"
        # The only garbage is a pid-stamped scratch the sweep can claim.
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert len(leftovers) == 1
        match = SCRATCH_PATTERN.match(leftovers[0].name)
        assert match is not None and int(match.group("pid")) == child.pid
        victims = sweep_orphan_spills(tmp_path)
        assert victims == leftovers
        assert list(tmp_path.iterdir()) == [target]


class TestManifest:
    def test_write_npz_is_a_plain_npz_with_a_manifest(self, tmp_path):
        target = tmp_path / "artifact.npz"
        arrays = _arrays()
        write_npz(target, arrays)
        with np.load(target) as loaded:
            for name, expected in arrays.items():
                np.testing.assert_array_equal(loaded[name], expected)
        manifest = read_manifest(target)
        assert manifest is not None
        assert sorted(manifest["members"]) == ["indices.npy", "indptr.npy"]

    @pytest.mark.parametrize("mode,verdict", [("full", "verified"), ("sampled", "sampled")])
    def test_intact_artifact_verifies(self, tmp_path, mode, verdict):
        target = tmp_path / "artifact.npz"
        write_npz(target, _arrays())
        assert verify_artifact(target, mode=mode) == verdict
        assert artifact_counters()["verified"] == 1

    def test_bit_flip_is_detected(self, tmp_path):
        target = tmp_path / "artifact.npz"
        write_npz(target, _arrays())
        raw = bytearray(target.read_bytes())
        # Flip a byte inside member data (past the first local header).
        raw[200] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError) as excinfo:
            verify_artifact(target, mode="full")
        assert excinfo.value.retryable
        assert artifact_counters()["failed"] == 1

    def test_truncated_artifact_is_detected(self, tmp_path):
        target = tmp_path / "artifact.npz"
        write_npz(target, _arrays())
        raw = target.read_bytes()
        target.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptError):
            verify_artifact(target, mode="sampled")

    def test_legacy_artifact_without_manifest_is_unchecked(self, tmp_path):
        target = tmp_path / "legacy.npz"
        np.savez(target, **_arrays())
        assert read_manifest(target) is None
        assert verify_artifact(target, mode="full") == "unchecked"
        assert artifact_counters()["skipped"] == 1

    def test_mode_off_skips(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.npz"
        write_npz(target, _arrays())
        assert verify_artifact(target, mode="off") == "skipped"
        monkeypatch.setenv("REPRO_VERIFY_ARTIFACTS", "off")
        assert verify_artifact(target) == "skipped"

    def test_unknown_mode_is_a_configuration_error(self, tmp_path):
        target = tmp_path / "artifact.npz"
        write_npz(target, _arrays())
        with pytest.raises(ConfigurationError, match="unknown artifact"):
            verify_artifact(target, mode="paranoid")

    def test_manifest_footer_does_not_move_member_offsets(self, tmp_path):
        """The in-band manifest must be invisible to offset-based mmap."""
        plain = tmp_path / "plain.npz"
        checked = tmp_path / "checked.npz"
        with open(plain, "wb") as sink:
            np.savez(sink, **_arrays())
        write_npz(checked, _arrays())
        for name in ("indptr.npy", "indices.npy"):
            with zipfile.ZipFile(plain) as a, zipfile.ZipFile(checked) as b:
                assert a.getinfo(name).header_offset == b.getinfo(name).header_offset


class TestJournal:
    FP = "f" * 32

    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "run"
        journal = ExperimentJournal(path, self.FP)
        assert journal.path.name.endswith(JOURNAL_SUFFIX)
        journal.append_cell("NS-HH", 0, 50, 7, [1.0, 2.5], [48, 51])
        journal.append_cell("NS-HH", 1, 100, 7, [3.0], [99])
        journal.close()

        resumed = ExperimentJournal(journal.path, self.FP, resume=True)
        cells = resumed.completed_cells()
        assert set(cells) == {("NS-HH", 0), ("NS-HH", 1)}
        assert cells[("NS-HH", 0)]["estimates"] == [1.0, 2.5]
        assert cells[("NS-HH", 0)]["api_calls"] == [48, 51]
        assert not resumed.committed
        resumed.commit(cells=2)
        assert resumed.committed
        resumed.close()
        assert journal_is_committed(journal.path)

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = ExperimentJournal(tmp_path / "run", self.FP)
        journal.append_cell("NS-HH", 0, 50, 7, [1.0], [48])
        journal.append_cell("NS-HH", 1, 100, 7, [2.0], [99])
        journal.close()
        raw = journal.path.read_text().splitlines(keepends=True)
        journal.path.write_text("".join(raw[:-1]) + raw[-1][: len(raw[-1]) // 2])

        resumed = ExperimentJournal(journal.path, self.FP, resume=True)
        assert set(resumed.completed_cells()) == {("NS-HH", 0)}
        resumed.close()

    def test_mangled_checksum_is_skipped(self, tmp_path):
        journal = ExperimentJournal(tmp_path / "run", self.FP)
        journal.append_cell("NS-HH", 0, 50, 7, [1.0], [48])
        journal.close()
        lines = journal.path.read_text().splitlines()
        # Corrupt the payload of the cell line without tearing the JSON.
        lines[-1] = lines[-1].replace('"true_count":7', '"true_count":8')
        journal.path.write_text("\n".join(lines) + "\n")
        records = read_records(journal.path)
        assert [r["type"] for r in records] == ["begin"]

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        journal = ExperimentJournal(tmp_path / "run", self.FP)
        journal.close()
        with pytest.raises(ExperimentError, match="different suite"):
            ExperimentJournal(journal.path, "0" * 32, resume=True)

    def test_append_failures_degrade_not_kill(self, tmp_path):
        install_injector(FaultInjector(FaultPlan.parse("journal.append=error,count=1")))
        journal = ExperimentJournal(tmp_path / "run", self.FP)
        # The begin record ate the injected fault; the cell lands fine.
        assert journal.append_failures == 1
        journal.append_cell("NS-HH", 0, 50, 7, [1.0], [48])
        assert journal.appended == 1
        journal.close()

    def test_suite_fingerprint_tracks_graph_and_params(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        graph_a = CSRGraph.from_edge_array(edges, num_nodes=4)
        graph_b = CSRGraph.from_edge_array(edges[:-1], num_nodes=4)
        base = suite_fingerprint(graph_a, seed=1, sizes=[10, 20])
        assert suite_fingerprint(graph_a, seed=1, sizes=[10, 20]) == base
        assert suite_fingerprint(graph_a, seed=2, sizes=[10, 20]) != base
        assert suite_fingerprint(graph_b, seed=1, sizes=[10, 20]) != base
        assert graph_fingerprint(graph_a) != graph_fingerprint(graph_b)


class TestSnapshotBlob:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.snap"
        payload = {"entries": [(("k", 1), 2.5)], "fingerprint": "abc"}
        write_blob(path, payload)
        assert read_blob(path) == payload

    def test_bit_flip_is_detected(self, tmp_path):
        path = tmp_path / "cache.snap"
        write_blob(path, {"entries": list(range(100))})
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError, match="integrity check"):
            read_blob(path)

    def test_truncation_is_detected(self, tmp_path):
        path = tmp_path / "cache.snap"
        write_blob(path, {"entries": list(range(100))})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(ArtifactCorruptError):
            read_blob(path)

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="unreadable"):
            read_blob(tmp_path / "never-written.snap")


class TestSweepDurabilityFiles:
    FP = "f" * 32

    def test_dead_pid_scratch_is_swept_live_pid_kept(self, tmp_path):
        child = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
        )
        dead_pid = int(child.stdout)
        dead = tmp_path / f".spill.npz.pid{dead_pid}.{'a' * 8}.tmp"
        dead.write_bytes(b"torn")
        live = tmp_path / f".spill.npz.pid{os.getpid()}.{'b' * 8}.tmp"
        live.write_bytes(b"in-flight")
        victims = sweep_orphan_spills(tmp_path)
        assert victims == [dead]
        assert live.exists() and not dead.exists()

    def test_committed_journal_swept_uncommitted_kept(self, tmp_path):
        done = ExperimentJournal(tmp_path / "done", self.FP)
        done.append_cell("NS-HH", 0, 50, 7, [1.0], [48])
        done.commit(cells=1)
        done.close()
        crashed = ExperimentJournal(tmp_path / "crashed", self.FP)
        crashed.append_cell("NS-HH", 0, 50, 7, [1.0], [48])
        crashed.close()

        victims = sweep_orphan_spills(tmp_path)
        assert victims == [done.path]
        assert crashed.path.exists()
        # The surviving journal still resumes.
        resumed = ExperimentJournal(crashed.path, self.FP, resume=True)
        assert set(resumed.completed_cells()) == {("NS-HH", 0)}
        resumed.close()


class TestValidateInvariants:
    def _ring(self, n=64):
        edges = np.column_stack([np.arange(n), (np.arange(n) + 1) % n])
        return CSRGraph.from_edge_array(edges, num_nodes=n)

    def test_valid_graph_passes_and_reports(self):
        graph = self._ring()
        report = graph.validate_invariants()
        assert report["num_nodes"] == 64
        assert report["num_edges"] == 64
        assert report["checked_sorted_rows"]

    def test_out_of_range_index_raises(self):
        graph = self._ring()
        bad = graph.indices.copy()
        bad[5] = 10_000
        corrupt = CSRGraph(None, graph.indptr.copy(), bad, validate=False)
        with pytest.raises(ArtifactCorruptError, match="CSR invariant"):
            corrupt.validate_invariants()

    def test_non_monotonic_indptr_raises(self):
        graph = self._ring()
        bad = graph.indptr.copy()
        bad[3], bad[4] = bad[4], bad[3]
        corrupt = CSRGraph(None, bad, graph.indices.copy(), validate=False)
        with pytest.raises(ArtifactCorruptError, match="CSR invariant"):
            corrupt.validate_invariants()

    def test_asymmetry_is_caught_by_spot_check(self):
        graph = self._ring()
        bad = graph.indices.copy()
        # Redirect every one of node 0's half-edges so no row points back.
        row = slice(graph.indptr[0], graph.indptr[1])
        bad[row] = 0
        corrupt = CSRGraph(None, graph.indptr.copy(), bad, validate=False)
        with pytest.raises(ArtifactCorruptError, match="CSR invariant"):
            corrupt.validate_invariants(check_sorted_rows=False, symmetry_samples=4096)
