"""Unit tests for graph cleaning (the paper's §5.1 preprocessing)."""

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph.cleaning import (
    connected_components,
    deduplicate_edges,
    induced_subgraph,
    is_connected,
    largest_connected_component,
    simplify_osn_graph,
)
from repro.graph.labeled_graph import LabeledGraph


class TestDeduplicateEdges:
    def test_removes_self_loops(self):
        assert deduplicate_edges([(1, 1), (1, 2)]) == [(1, 2)]

    def test_removes_parallel_and_reversed_duplicates(self):
        assert deduplicate_edges([(1, 2), (2, 1), (1, 2)]) == [(1, 2)]

    def test_keeps_distinct_edges_in_order(self):
        assert deduplicate_edges([(3, 4), (1, 2)]) == [(3, 4), (1, 2)]

    def test_empty_input(self):
        assert deduplicate_edges([]) == []


class TestComponents:
    def test_connected_components_sizes(self):
        graph = LabeledGraph.from_edges([(1, 2), (2, 3), (10, 11)])
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2]

    def test_largest_connected_component(self):
        graph = LabeledGraph.from_edges([(1, 2), (2, 3), (10, 11)], {1: ["a"], 10: ["b"]})
        lcc = largest_connected_component(graph)
        assert set(lcc.nodes()) == {1, 2, 3}
        assert lcc.labels_of(1) == frozenset({"a"})

    def test_largest_component_of_connected_graph_is_copy(self, triangle_graph):
        lcc = largest_connected_component(triangle_graph)
        assert lcc.num_nodes == triangle_graph.num_nodes
        lcc.add_edge(1, 99)
        assert not triangle_graph.has_node(99)

    def test_largest_component_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            largest_connected_component(LabeledGraph())

    def test_is_connected(self, triangle_graph):
        assert is_connected(triangle_graph)
        disconnected = LabeledGraph.from_edges([(1, 2), (3, 4)])
        assert not is_connected(disconnected)
        assert not is_connected(LabeledGraph())

    def test_induced_subgraph(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, [1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.labels_of(1) == frozenset({"a"})


class TestSimplify:
    def test_full_pipeline(self):
        edges = [(1, 2), (2, 1), (2, 2), (2, 3), (7, 8)]
        labels = {1: ["a"], 3: ["b"], 7: ["c"], 99: ["isolated"]}
        graph = simplify_osn_graph(edges, labels)
        # largest component is {1, 2, 3}; node 99 never appears in an edge
        assert set(graph.nodes()) == {1, 2, 3}
        assert graph.num_edges == 2
        assert graph.labels_of(3) == frozenset({"b"})

    def test_keep_all_components(self):
        graph = simplify_osn_graph([(1, 2), (7, 8)], keep_largest_component=False)
        assert graph.num_nodes == 4

    def test_empty_edge_list(self):
        graph = simplify_osn_graph([], keep_largest_component=False)
        assert graph.num_nodes == 0
