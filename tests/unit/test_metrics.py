"""Unit tests for the NRMSE / bias / variance metrics."""

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.metrics import (
    bias,
    empirical_variance,
    nrmse,
    nrmse_decomposition,
    relative_bias,
)


class TestNRMSE:
    def test_perfect_estimates_give_zero(self):
        assert nrmse([100.0, 100.0, 100.0], 100.0) == 0.0

    def test_known_value(self):
        # estimates 90 and 110 against truth 100: RMSE = 10, NRMSE = 0.1
        assert nrmse([90.0, 110.0], 100.0) == pytest.approx(0.1)

    def test_pure_bias(self):
        assert nrmse([120.0, 120.0], 100.0) == pytest.approx(0.2)

    def test_captures_both_bias_and_variance(self):
        pure_variance = nrmse([90.0, 110.0], 100.0)
        biased = nrmse([100.0, 120.0], 100.0)
        assert biased > pure_variance

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            nrmse([], 10.0)

    def test_zero_truth_raises(self):
        with pytest.raises(ExperimentError):
            nrmse([1.0], 0.0)


class TestBias:
    def test_bias(self):
        assert bias([90.0, 110.0], 100.0) == pytest.approx(0.0)
        assert bias([110.0, 110.0], 100.0) == pytest.approx(10.0)

    def test_relative_bias(self):
        assert relative_bias([110.0, 110.0], 100.0) == pytest.approx(0.1)


class TestVariance:
    def test_constant_estimates(self):
        assert empirical_variance([5.0, 5.0, 5.0]) == 0.0

    def test_known_variance(self):
        assert empirical_variance([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            empirical_variance([])


class TestDecomposition:
    def test_shares_sum_to_one(self):
        parts = nrmse_decomposition([90.0, 120.0, 95.0], 100.0)
        assert parts["variance_share"] + parts["bias_share"] == pytest.approx(1.0)
        assert parts["nrmse"] == pytest.approx(nrmse([90.0, 120.0, 95.0], 100.0))

    def test_unbiased_case_is_all_variance(self):
        parts = nrmse_decomposition([90.0, 110.0], 100.0)
        assert parts["variance_share"] == pytest.approx(1.0)

    def test_degenerate_perfect_estimates(self):
        parts = nrmse_decomposition([50.0, 50.0], 50.0)
        assert parts["nrmse"] == 0.0
        assert parts["variance_share"] == 0.0
