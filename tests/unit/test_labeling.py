"""Unit tests for the label-assignment models."""

import math

import pytest

from repro.datasets.labeling import (
    POKEC_LOCATIONS,
    assign_binary_labels,
    assign_degree_bucket_labels,
    assign_zipf_labels,
    binary_fraction_for_cross_edge_share,
    default_degree_thresholds,
    location_name,
    zipf_weights,
)
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.exceptions import ConfigurationError
from repro.graph.statistics import count_target_edges, label_histogram


@pytest.fixture(scope="module")
def topology():
    return powerlaw_cluster_osn(800, 6, 0.3, rng=5)


class TestBinaryFraction:
    def test_inverts_cross_share(self):
        p = binary_fraction_for_cross_edge_share(0.42)
        assert 2 * p * (1 - p) == pytest.approx(0.42)

    def test_half_gives_half(self):
        assert binary_fraction_for_cross_edge_share(0.5) == pytest.approx(0.5)

    def test_above_half_impossible(self):
        with pytest.raises(ConfigurationError):
            binary_fraction_for_cross_edge_share(0.6)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            binary_fraction_for_cross_edge_share(0.0)


class TestBinaryLabels:
    def test_every_node_gets_exactly_one_label(self, topology):
        graph = topology.copy()
        assign_binary_labels(graph, 0.5, rng=1)
        for node in graph.nodes():
            labels = graph.labels_of(node)
            assert len(labels) == 1
            assert labels <= {1, 2}

    def test_cross_share_matches_probability(self, topology):
        graph = topology.copy()
        target = 0.424
        probability = binary_fraction_for_cross_edge_share(target)
        assign_binary_labels(graph, probability, rng=3)
        achieved = count_target_edges(graph, 1, 2) / graph.num_edges
        assert achieved == pytest.approx(target, abs=0.06)

    def test_custom_label_values(self, topology):
        graph = topology.copy()
        assign_binary_labels(graph, 0.3, labels=(7, 9), rng=2)
        assert graph.all_labels() <= {7, 9}

    def test_homophily_increases_assortativity(self, topology):
        independent = topology.copy()
        assortative = topology.copy()
        assign_binary_labels(independent, 0.5, rng=4, homophily=0.0)
        assign_binary_labels(assortative, 0.5, rng=4, homophily=0.9)
        cross_independent = count_target_edges(independent, 1, 2) / independent.num_edges
        cross_assortative = count_target_edges(assortative, 1, 2) / assortative.num_edges
        assert cross_assortative <= cross_independent

    def test_invalid_homophily(self, topology):
        with pytest.raises(ConfigurationError):
            assign_binary_labels(topology.copy(), 0.5, homophily=1.0)

    def test_reproducible(self, topology):
        first = topology.copy()
        second = topology.copy()
        assign_binary_labels(first, 0.5, rng=6)
        assign_binary_labels(second, 0.5, rng=6)
        assert all(first.labels_of(n) == second.labels_of(n) for n in first.nodes())


class TestZipfLabels:
    def test_weights(self):
        weights = zipf_weights(4, 1.0)
        assert weights == pytest.approx([1.0, 0.5, 1 / 3, 0.25])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(5, 0.0)

    def test_every_node_gets_one_label_in_range(self, topology):
        graph = topology.copy()
        assign_zipf_labels(graph, num_labels=30, exponent=1.2, rng=7)
        for node in graph.nodes():
            labels = list(graph.labels_of(node))
            assert len(labels) == 1
            assert 1 <= labels[0] <= 30

    def test_head_labels_more_popular_than_tail(self, topology):
        graph = topology.copy()
        assign_zipf_labels(graph, num_labels=30, exponent=1.2, rng=8)
        histogram = label_histogram(graph)
        head = histogram.get(1, 0)
        tail = histogram.get(30, 0)
        assert head > tail

    def test_label_offset(self, topology):
        graph = topology.copy()
        assign_zipf_labels(graph, num_labels=5, exponent=1.0, rng=9, label_offset=100)
        assert min(graph.all_labels()) >= 100


class TestDegreeBucketLabels:
    def test_default_thresholds_are_powers_of_two(self):
        assert default_degree_thresholds(20) == [1, 2, 4, 8, 16]

    def test_bucket_assignment(self, topology):
        graph = topology.copy()
        assign_degree_bucket_labels(graph)
        for node in list(graph.nodes())[:200]:
            label = next(iter(graph.labels_of(node)))
            degree = graph.degree(node)
            thresholds = default_degree_thresholds(graph.max_degree())
            assert thresholds[label] <= degree
            if label + 1 < len(thresholds):
                assert degree < thresholds[label + 1]

    def test_custom_thresholds(self, star_graph):
        assign_degree_bucket_labels(star_graph, thresholds=[1, 3])
        assert star_graph.labels_of(0) == frozenset({1})   # degree 5 >= 3
        assert star_graph.labels_of(1) == frozenset({0})   # degree 1 < 3

    def test_invalid_thresholds(self, star_graph):
        with pytest.raises(ConfigurationError):
            assign_degree_bucket_labels(star_graph, thresholds=[0, 2])


class TestLocationNames:
    def test_known_location(self):
        assert POKEC_LOCATIONS[86].startswith("bratislavsky")
        assert location_name(86) == POKEC_LOCATIONS[86]

    def test_synthetic_location(self):
        assert "okres 999" in location_name(999)
