"""Unit tests for the exception hierarchy."""

import pytest

from repro import exceptions


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.ReproError), name

    def test_graph_errors(self):
        assert issubclass(exceptions.NodeNotFoundError, exceptions.GraphError)
        assert issubclass(exceptions.EdgeNotFoundError, exceptions.GraphError)
        assert issubclass(exceptions.LabelError, exceptions.GraphError)
        assert issubclass(exceptions.EmptyGraphError, exceptions.GraphError)

    def test_api_errors(self):
        assert issubclass(exceptions.APIBudgetExceededError, exceptions.APIError)

    def test_walk_errors(self):
        assert issubclass(exceptions.MixingTimeError, exceptions.WalkError)

    def test_estimation_errors(self):
        assert issubclass(exceptions.InsufficientSamplesError, exceptions.EstimationError)


class TestMessages:
    def test_node_not_found_carries_node(self):
        error = exceptions.NodeNotFoundError("alice")
        assert error.node == "alice"
        assert "alice" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.u, error.v) == (1, 2)

    def test_budget_error_carries_numbers(self):
        error = exceptions.APIBudgetExceededError(budget=10, used=11)
        assert error.budget == 10
        assert error.used == 11
        assert "10" in str(error)

    def test_catching_the_base_class(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DatasetError("boom")
