"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["datasets"]).command == "datasets"
        assert parser.parse_args(["estimate", "--dataset", "pokec"]).dataset == "pokec"
        assert parser.parse_args(["table", "4"]).number == 4
        assert parser.parse_args(["figure", "1"]).number == 1
        assert parser.parse_args(["bounds", "--epsilon", "0.2"]).epsilon == 0.2
        assert parser.parse_args(["mixing", "--dataset", "orkut"]).dataset == "orkut"
        assert parser.parse_args(["select", "--threshold", "0.1"]).threshold == 0.1
        assert parser.parse_args(["cost", "--budget", "0.03"]).budget == 0.03

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--dataset", "friendster"])

    def test_invalid_table_number_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])


class TestCommands:
    def test_estimate_command(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--dataset",
                "facebook",
                "--algorithm",
                "NeighborSample-HH",
                "--scale",
                "0.1",
                "--budget",
                "0.05",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "estimated F" in captured
        assert "relative error" in captured

    def test_bounds_command(self, capsys):
        exit_code = main(["bounds", "--dataset", "facebook", "--scale", "0.1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "NeighborExploration-RW" in captured

    def test_mixing_command(self, capsys):
        exit_code = main(["mixing", "--dataset", "facebook", "--scale", "0.1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "measured burn-in" in captured

    def test_table_command(self, capsys):
        exit_code = main(
            [
                "table",
                "4",
                "--repetitions",
                "2",
                "--scale",
                "0.1",
                "--budgets",
                "0.02",
                "0.05",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Reproduction of paper Table 4" in captured
        assert "proposed beats baselines" in captured

    def test_figure_command(self, capsys):
        exit_code = main(
            ["figure", "1", "--repetitions", "2", "--scale", "0.05", "--seed", "5"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 1" in captured

    def test_datasets_command(self, capsys):
        exit_code = main(["datasets"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "facebook" in captured
        assert "livejournal" in captured

    def test_select_command(self, capsys):
        exit_code = main(
            ["select", "--dataset", "facebook", "--scale", "0.1", "--budget", "0.05"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "selected algorithm" in captured
        assert "NeighborSample-HH" in captured or "NeighborExploration-HH" in captured

    def test_cost_command(self, capsys):
        exit_code = main(
            ["cost", "--dataset", "facebook", "--scale", "0.1", "--repetitions", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "calls per sample" in captured

    def test_verbose_flag(self, capsys):
        exit_code = main(["--verbose", "bounds", "--dataset", "facebook", "--scale", "0.1"])
        assert exit_code == 0


class TestGraphStoreFlag:
    def test_graph_store_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table", "4", "--representation", "csr", "--execution", "fleet",
             "--graph-store", "shm"]
        )
        assert args.graph_store == "shm"
        assert parser.parse_args(["figure", "1"]).graph_store == "ram"

    def test_unknown_graph_store_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "4", "--graph-store", "tape"])

    def test_table_runs_with_shm_jobs(self, capsys):
        exit_code = main(
            [
                "table", "4",
                "--representation", "csr",
                "--execution", "fleet",
                "--graph-store", "shm",
                "--jobs", "2",
                "--repetitions", "2",
                "--scale", "0.1",
                "--budgets", "0.02", "0.05",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Reproduction of paper Table 4" in captured
