"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["datasets"]).command == "datasets"
        assert parser.parse_args(["estimate", "--dataset", "pokec"]).dataset == "pokec"
        assert parser.parse_args(["table", "4"]).number == 4
        assert parser.parse_args(["figure", "1"]).number == 1
        assert parser.parse_args(["bounds", "--epsilon", "0.2"]).epsilon == 0.2
        assert parser.parse_args(["mixing", "--dataset", "orkut"]).dataset == "orkut"
        assert parser.parse_args(["select", "--threshold", "0.1"]).threshold == 0.1
        assert parser.parse_args(["cost", "--budget", "0.03"]).budget == 0.03

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--dataset", "friendster"])

    def test_invalid_table_number_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])


class TestCommands:
    def test_estimate_command(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--dataset",
                "facebook",
                "--algorithm",
                "NeighborSample-HH",
                "--scale",
                "0.1",
                "--budget",
                "0.05",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "estimated F" in captured
        assert "relative error" in captured

    def test_bounds_command(self, capsys):
        exit_code = main(["bounds", "--dataset", "facebook", "--scale", "0.1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "NeighborExploration-RW" in captured

    def test_mixing_command(self, capsys):
        exit_code = main(["mixing", "--dataset", "facebook", "--scale", "0.1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "measured burn-in" in captured

    def test_table_command(self, capsys):
        exit_code = main(
            [
                "table",
                "4",
                "--repetitions",
                "2",
                "--scale",
                "0.1",
                "--budgets",
                "0.02",
                "0.05",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Reproduction of paper Table 4" in captured
        assert "proposed beats baselines" in captured

    def test_figure_command(self, capsys):
        exit_code = main(
            ["figure", "1", "--repetitions", "2", "--scale", "0.05", "--seed", "5"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 1" in captured

    def test_datasets_command(self, capsys):
        exit_code = main(["datasets"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "facebook" in captured
        assert "livejournal" in captured

    def test_select_command(self, capsys):
        exit_code = main(
            ["select", "--dataset", "facebook", "--scale", "0.1", "--budget", "0.05"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "selected algorithm" in captured
        assert "NeighborSample-HH" in captured or "NeighborExploration-HH" in captured

    def test_cost_command(self, capsys):
        exit_code = main(
            ["cost", "--dataset", "facebook", "--scale", "0.1", "--repetitions", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "calls per sample" in captured

    def test_verbose_flag(self, capsys):
        exit_code = main(["--verbose", "bounds", "--dataset", "facebook", "--scale", "0.1"])
        assert exit_code == 0


class TestGraphStoreFlag:
    def test_graph_store_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table", "4", "--representation", "csr", "--execution", "fleet",
             "--graph-store", "shm"]
        )
        assert args.graph_store == "shm"
        assert parser.parse_args(["figure", "1"]).graph_store == "ram"

    def test_unknown_graph_store_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "4", "--graph-store", "tape"])

    def test_table_runs_with_shm_jobs(self, capsys):
        exit_code = main(
            [
                "table", "4",
                "--representation", "csr",
                "--execution", "fleet",
                "--graph-store", "shm",
                "--jobs", "2",
                "--repetitions", "2",
                "--scale", "0.1",
                "--budgets", "0.02", "0.05",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Reproduction of paper Table 4" in captured


class TestFsckCommand:
    def _spill(self, tmp_path, name="graph.npz"):
        import numpy as np

        from repro.durability import write_npz
        from repro.graph.csr import CSRGraph

        n = 64
        edges = np.column_stack([np.arange(n), (np.arange(n) + 1) % n])
        graph = CSRGraph.from_edge_array(edges, num_nodes=n)
        target = tmp_path / name
        write_npz(target, {"indptr": graph.indptr, "indices": graph.indices})
        return target

    def test_fsck_passes_an_intact_artifact(self, tmp_path, capsys):
        target = self._spill(tmp_path)
        exit_code = main(["fsck", str(target)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.startswith("ok") and str(target) in out

    def test_fsck_scans_directories(self, tmp_path, capsys):
        self._spill(tmp_path, "a.npz")
        self._spill(tmp_path, "b.npz")
        exit_code = main(["fsck", str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("ok      ") == 2

    def test_fsck_flags_a_bit_flipped_artifact(self, tmp_path, capsys):
        target = self._spill(tmp_path)
        raw = bytearray(target.read_bytes())
        raw[200] ^= 0xFF
        target.write_bytes(bytes(raw))
        exit_code = main(["fsck", str(target)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert f"CORRUPT {target}" in out

    def test_fsck_flags_structurally_broken_csr(self, tmp_path, capsys):
        import numpy as np

        from repro.durability import write_npz

        # Checksums match the bytes, but the bytes are not a valid CSR:
        # an out-of-range neighbor index.  Structure checking catches it.
        indptr = np.array([0, 2, 4], dtype=np.int64)
        indices = np.array([1, 9999, 0, 0], dtype=np.int64)
        target = tmp_path / "broken.npz"
        write_npz(target, {"indptr": indptr, "indices": indices})
        assert main(["fsck", str(target)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        # --no-structure trusts the checksums alone and passes it.
        assert main(["fsck", "--no-structure", str(target)]) == 0
