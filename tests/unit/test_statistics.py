"""Unit tests for exact graph statistics and ground-truth counting."""

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import (
    count_target_edges,
    degree_histogram,
    edge_label_histogram,
    label_histogram,
    label_pair_by_frequency_quartile,
    nodes_covering_target_edges,
    summarize_graph,
    target_edge_fraction,
    target_incident_counts,
)


class TestCountTargetEdges:
    def test_triangle(self, triangle_graph):
        assert count_target_edges(triangle_graph, "a", "b") == 2
        assert count_target_edges(triangle_graph, "b", "a") == 2

    def test_path(self, path_graph):
        assert count_target_edges(path_graph, "x", "y") == 3

    def test_star(self, star_graph):
        assert count_target_edges(star_graph, "hub", "leaf") == 5

    def test_missing_labels_give_zero(self, triangle_graph):
        assert count_target_edges(triangle_graph, "nope", "b") == 0

    def test_same_label_pair(self):
        graph = LabeledGraph.from_edges([(1, 2), (2, 3)], {1: ["a"], 2: ["a"], 3: ["b"]})
        assert count_target_edges(graph, "a", "a") == 1

    def test_multi_label_nodes(self):
        graph = LabeledGraph.from_edges([(1, 2)], {1: ["a", "b"], 2: ["c"]})
        assert count_target_edges(graph, "a", "c") == 1
        assert count_target_edges(graph, "b", "c") == 1

    def test_accepts_csr_view_directly(self, triangle_graph):
        from repro.graph.csr import csr_view

        assert count_target_edges(csr_view(triangle_graph), "a", "b") == 2

    def test_vectorized_matches_dict_loop(self, gender_osn, rare_label_osn):
        from repro.graph.statistics import _count_target_edges_dict

        assert count_target_edges(gender_osn, 1, 2) == _count_target_edges_dict(
            gender_osn, 1, 2
        )
        labels = sorted(rare_label_osn.all_labels())
        for t1, t2 in [(labels[0], labels[1]), (labels[0], labels[0])]:
            assert count_target_edges(rare_label_osn, t1, t2) == _count_target_edges_dict(
                rare_label_osn, t1, t2
            )

    def test_cache_invalidated_by_mutation(self):
        graph = LabeledGraph.from_edges([(1, 2), (2, 3)], {1: ["a"], 2: ["b"], 3: ["a"]})
        assert count_target_edges(graph, "a", "b") == 2
        graph.set_labels(3, ["b"])  # (2,3) is now b-b, not a-b
        assert count_target_edges(graph, "a", "b") == 1
        graph.add_edge(1, 3)  # new a-b edge
        assert count_target_edges(graph, "a", "b") == 2

    def test_dict_fallback_for_graph_likes(self, triangle_graph):
        class Wrapper:
            """Graph-like that is not a LabeledGraph (no version counter)."""

            def edges(self):
                return triangle_graph.edges()

            def labels_of(self, node):
                return triangle_graph.labels_of(node)

        assert count_target_edges(Wrapper(), "a", "b") == 2

    def test_fraction(self, triangle_graph):
        assert target_edge_fraction(triangle_graph, "a", "b") == pytest.approx(2 / 3)

    def test_fraction_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            target_edge_fraction(LabeledGraph(), "a", "b")


class TestIncidentCounts:
    def test_sum_is_twice_count(self, triangle_graph):
        counts = target_incident_counts(triangle_graph, "a", "b")
        assert sum(counts.values()) == 2 * count_target_edges(triangle_graph, "a", "b")

    def test_sum_is_twice_count_random_graph(self, gender_osn):
        counts = target_incident_counts(gender_osn, 1, 2)
        assert sum(counts.values()) == 2 * count_target_edges(gender_osn, 1, 2)

    def test_nodes_covering_target_edges(self, triangle_graph):
        assert nodes_covering_target_edges(triangle_graph, "a", "b") == {1, 2, 3}
        # For a pair with no target edges the covering set is empty.
        assert nodes_covering_target_edges(triangle_graph, "zz", "b") == set()


class TestHistograms:
    def test_degree_histogram(self, star_graph):
        assert degree_histogram(star_graph) == {5: 1, 1: 5}

    def test_label_histogram(self, triangle_graph):
        assert label_histogram(triangle_graph) == {"a": 2, "b": 1}

    def test_edge_label_histogram(self, triangle_graph):
        histogram = edge_label_histogram(triangle_graph)
        assert histogram[("a", "b")] == 2
        assert histogram[("a", "a")] == 1

    def test_edge_label_histogram_counts_each_edge_once_per_pair(self):
        graph = LabeledGraph.from_edges([(1, 2)], {1: ["a", "b"], 2: ["a"]})
        histogram = edge_label_histogram(graph)
        # pairs ('a','a') and ('a','b') each appear once for this single edge
        assert histogram == {("a", "a"): 1, ("a", "b"): 1}

    def test_quartile_split(self, rare_label_osn):
        buckets = label_pair_by_frequency_quartile(rare_label_osn, quartiles=4)
        assert len(buckets) == 4
        flattened = [count for bucket in buckets for _, count in bucket]
        assert flattened == sorted(flattened)

    def test_quartile_split_invalid(self, triangle_graph):
        with pytest.raises(ValueError):
            label_pair_by_frequency_quartile(triangle_graph, quartiles=0)


class TestSummary:
    def test_summary_fields(self, triangle_graph):
        summary = summarize_graph(triangle_graph, name="tri")
        assert summary.name == "tri"
        assert summary.num_nodes == 3
        assert summary.num_edges == 3
        assert summary.max_degree == 2
        assert summary.average_degree == pytest.approx(2.0)
        assert summary.num_distinct_labels == 2

    def test_summary_as_row(self, triangle_graph):
        row = summarize_graph(triangle_graph, name="tri").as_row()
        assert row[0] == "tri"
        assert row[1] == 3

    def test_summary_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            summarize_graph(LabeledGraph())
