"""Unit tests for CSV / JSON result export."""

import csv
import json

import pytest

from repro.experiments.export import (
    frequency_points_to_rows,
    nrmse_table_to_rows,
    write_frequency_series_csv,
    write_nrmse_table_csv,
    write_nrmse_table_json,
)
from repro.experiments.runner import NRMSETable, TrialOutcome
from repro.experiments.sweeps import FrequencyPoint


@pytest.fixture
def small_table():
    table = NRMSETable(
        dataset="Toy",
        target_pair=(1, 2),
        true_count=50,
        sample_sizes=[10, 20],
        sample_fractions=[0.01, 0.02],
    )
    table.cells["AlgA"] = [
        TrialOutcome("AlgA", 10, 50, estimates=[45.0, 55.0], api_calls=[12, 13]),
        TrialOutcome("AlgA", 20, 50, estimates=[48.0, 52.0], api_calls=[22, 24]),
    ]
    return table


class TestTableExport:
    def test_rows_cover_every_cell(self, small_table):
        rows = nrmse_table_to_rows(small_table)
        assert len(rows) == 2
        assert {row["sample_size"] for row in rows} == {10, 20}
        assert all(row["algorithm"] == "AlgA" for row in rows)
        assert all(row["true_count"] == 50 for row in rows)

    def test_csv_round_trip(self, small_table, tmp_path):
        path = write_nrmse_table_csv(small_table, tmp_path / "table.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert float(rows[0]["nrmse"]) == pytest.approx(0.1)
        assert float(rows[0]["mean_api_calls"]) == pytest.approx(12.5)

    def test_json_round_trip(self, small_table, tmp_path):
        path = write_nrmse_table_json(small_table, tmp_path / "table.json")
        payload = json.loads(path.read_text())
        assert payload["dataset"] == "Toy"
        assert payload["sample_sizes"] == [10, 20]
        assert len(payload["cells"]) == 2

    def test_nested_directories_created(self, small_table, tmp_path):
        path = write_nrmse_table_csv(small_table, tmp_path / "deep" / "dir" / "t.csv")
        assert path.exists()


class TestFrequencyExport:
    def test_rows(self):
        points = [FrequencyPoint((1, 2), 5, 0.01, {"A": 0.5, "B": 0.2})]
        rows = frequency_points_to_rows(points)
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"A", "B"}

    def test_csv(self, tmp_path):
        points = [
            FrequencyPoint((1, 2), 5, 0.01, {"A": 0.5}),
            FrequencyPoint((3, 4), 50, 0.1, {"A": 0.1}),
        ]
        path = write_frequency_series_csv(points, tmp_path / "series.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert float(rows[1]["relative_count"]) == pytest.approx(0.1)

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_frequency_series_csv([], tmp_path / "series.csv")
