"""Worker-crash recovery: a killed pool worker cannot change the table.

The recovery loop in :func:`run_cells_parallel` respawns a broken pool
and re-runs only the cells that had not finished.  Because every cell
carries its own pre-derived seed, the recovered table must be
**bit-identical** to an uninterrupted run — that equality is the whole
acceptance criterion, asserted here with a real SIGKILL injected into a
real pool worker via ``REPRO_FAULTS``.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.resilience.faults import FAULTS_ENV, FAULTS_STATE_ENV


@pytest.fixture(scope="module")
def csr_graph():
    rng = np.random.default_rng(3)
    hub_edges = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
    random_edges = rng.integers(0, 300, size=(1500, 2))
    edges = np.concatenate([hub_edges, random_edges])
    labels = rng.integers(1, 3, size=300)
    from repro.graph.csr import CSRGraph

    return CSRGraph.from_edge_array(edges, num_nodes=300, label_array=labels)


@pytest.fixture(scope="module")
def suite():
    full = build_algorithm_suite(include_baselines=False)
    return {"NeighborSample-HH": full["NeighborSample-HH"]}


def _table(graph, suite, **overrides):
    settings = dict(
        sample_fractions=(0.02, 0.05),
        repetitions=3,
        algorithms=suite,
        burn_in=5,
        seed=42,
        execution="fleet",
        n_jobs=2,
        graph_store="shm",
    )
    settings.update(overrides)
    return compare_algorithms(graph, 1, 2, **settings)


class TestKillRecovery:
    def test_killed_worker_is_respawned_and_the_table_is_bit_identical(
        self, csr_graph, suite, tmp_path, monkeypatch
    ):
        reference = _table(csr_graph, suite)
        # Kill exactly one worker, once, on its first cell.  The state
        # dir makes the count=1 budget hold across the respawn —
        # without it the replacement worker would re-read the plan and
        # kill itself forever.
        monkeypatch.setenv(FAULTS_ENV, "worker.cell=kill,count=1")
        monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path))
        recovered = _table(csr_graph, suite)
        claimed = sorted(path.name for path in tmp_path.glob("fault-*.token"))
        assert claimed == ["fault-0-0.token"]  # the kill really happened
        assert recovered.algorithms() == reference.algorithms()
        for name in reference.algorithms():
            for ours, theirs in zip(recovered.cells[name], reference.cells[name]):
                assert ours.estimates == theirs.estimates
                assert ours.api_calls == theirs.api_calls

    def test_unrecoverable_pool_gives_up_with_a_typed_error(
        self, csr_graph, suite, monkeypatch
    ):
        # Unlimited kills: every respawned worker dies on its first
        # cell, so the respawn budget must run out loudly instead of
        # looping forever.
        monkeypatch.setenv(FAULTS_ENV, "worker.cell=kill")
        monkeypatch.delenv(FAULTS_STATE_ENV, raising=False)
        with pytest.raises(ExperimentError, match="giving up after"):
            _table(csr_graph, suite)
