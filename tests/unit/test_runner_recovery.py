"""Worker-crash recovery: a killed pool worker cannot change the table.

The recovery loop in :func:`run_cells_parallel` respawns a broken pool
and re-runs only the cells that had not finished.  Because every cell
carries its own pre-derived seed, the recovered table must be
**bit-identical** to an uninterrupted run — that equality is the whole
acceptance criterion, asserted here with a real SIGKILL injected into a
real pool worker via ``REPRO_FAULTS``.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.resilience.faults import FAULTS_ENV, FAULTS_STATE_ENV


@pytest.fixture(scope="module")
def csr_graph():
    rng = np.random.default_rng(3)
    hub_edges = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
    random_edges = rng.integers(0, 300, size=(1500, 2))
    edges = np.concatenate([hub_edges, random_edges])
    labels = rng.integers(1, 3, size=300)
    from repro.graph.csr import CSRGraph

    return CSRGraph.from_edge_array(edges, num_nodes=300, label_array=labels)


@pytest.fixture(scope="module")
def suite():
    full = build_algorithm_suite(include_baselines=False)
    return {"NeighborSample-HH": full["NeighborSample-HH"]}


def _table(graph, suite, **overrides):
    settings = dict(
        sample_fractions=(0.02, 0.05),
        repetitions=3,
        algorithms=suite,
        burn_in=5,
        seed=42,
        execution="fleet",
        n_jobs=2,
        graph_store="shm",
    )
    settings.update(overrides)
    return compare_algorithms(graph, 1, 2, **settings)


class TestKillRecovery:
    def test_killed_worker_is_respawned_and_the_table_is_bit_identical(
        self, csr_graph, suite, tmp_path, monkeypatch
    ):
        reference = _table(csr_graph, suite)
        # Kill exactly one worker, once, on its first cell.  The state
        # dir makes the count=1 budget hold across the respawn —
        # without it the replacement worker would re-read the plan and
        # kill itself forever.
        monkeypatch.setenv(FAULTS_ENV, "worker.cell=kill,count=1")
        monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path))
        recovered = _table(csr_graph, suite)
        claimed = sorted(path.name for path in tmp_path.glob("fault-*.token"))
        assert claimed == ["fault-0-0.token"]  # the kill really happened
        assert recovered.algorithms() == reference.algorithms()
        for name in reference.algorithms():
            for ours, theirs in zip(recovered.cells[name], reference.cells[name]):
                assert ours.estimates == theirs.estimates
                assert ours.api_calls == theirs.api_calls

    def test_unrecoverable_pool_gives_up_with_a_typed_error(
        self, csr_graph, suite, monkeypatch
    ):
        # Unlimited kills: every respawned worker dies on its first
        # cell, so the respawn budget must run out loudly instead of
        # looping forever.
        monkeypatch.setenv(FAULTS_ENV, "worker.cell=kill")
        monkeypatch.delenv(FAULTS_STATE_ENV, raising=False)
        with pytest.raises(ExperimentError, match="giving up after"):
            _table(csr_graph, suite)


class TestCrashResume:
    """The journal/--resume loop: SIGKILL a sweep, resume bit-identically.

    The crashed run journals every cell that completed before the pool's
    respawn budget ran out; the resumed run replays those and executes
    only the missing ones.  Pre-derived cell seeds make the stitched
    table bit-identical to an uninterrupted run.
    """

    # The crashed run executes in a subprocess so a *real* SIGKILL can
    # take out the whole sweep — parent, pool and all — mid-journal.
    # It rebuilds the module fixtures by value (same seeds, same code)
    # so the suite fingerprint matches the in-test resume.
    DRIVER = """
import sys
import numpy as np
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.graph.csr import CSRGraph

rng = np.random.default_rng(3)
hub_edges = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
random_edges = rng.integers(0, 300, size=(1500, 2))
edges = np.concatenate([hub_edges, random_edges])
labels = rng.integers(1, 3, size=300)
graph = CSRGraph.from_edge_array(edges, num_nodes=300, label_array=labels)
full = build_algorithm_suite(include_baselines=False)
suite = {"NeighborSample-HH": full["NeighborSample-HH"]}
compare_algorithms(
    graph, 1, 2,
    sample_fractions=(0.02, 0.04, 0.06),
    repetitions=3, algorithms=suite, burn_in=5, seed=42,
    execution="fleet", n_jobs=2, graph_store="ram",
    journal=sys.argv[1],
)
"""

    def test_killed_sweep_resumes_bit_identical(self, csr_graph, suite, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.durability import journal_is_committed, read_records

        reference = _table(csr_graph, suite, sample_fractions=(0.02, 0.04, 0.06))
        journal = tmp_path / "table.journal.jsonl"

        # Slow every cell down so the kill window is wide, then SIGKILL
        # the whole process group the moment the first cell is durable.
        child = subprocess.Popen(
            [sys.executable, "-c", self.DRIVER, str(journal)],
            env=dict(
                os.environ,
                PYTHONPATH="src",
                REPRO_FAULTS="worker.cell=delay,seconds=0.5",
            ),
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                cells = [
                    r for r in read_records(journal) if r["type"] == "cell"
                ]
                if cells:
                    break
                if child.poll() is not None:
                    pytest.fail("sweep finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("no journaled cell appeared within the deadline")
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                os.killpg(child.pid, signal.SIGKILL)
        assert child.returncode == -signal.SIGKILL

        # The journal survived the crash with the completed prefix.
        assert journal.exists() and not journal_is_committed(journal)
        crashed_cells = [
            r for r in read_records(journal) if r["type"] == "cell"
        ]
        assert 1 <= len(crashed_cells) < 3
        crashed_pids = {r["pid"] for r in crashed_cells}

        resumed = _table(
            csr_graph,
            suite,
            sample_fractions=(0.02, 0.04, 0.06),
            journal=journal,
            resume=True,
        )

        # Bit-identical to the uninterrupted run, cell for cell.
        assert resumed.algorithms() == reference.algorithms()
        for name in reference.algorithms():
            for ours, theirs in zip(resumed.cells[name], reference.cells[name]):
                assert ours.estimates == theirs.estimates
                assert ours.api_calls == theirs.api_calls

        # The resumed run journaled only the missing cells (no replays
        # re-appended) and committed the suite.
        records = read_records(journal)
        cell_keys = [
            (r["algorithm"], r["column"])
            for r in records
            if r["type"] == "cell"
        ]
        assert len(cell_keys) == len(set(cell_keys)) == 3
        assert journal_is_committed(journal)
        # The fresh cells carry this process's pid; the replayed ones
        # keep the dead writer's — the journal records who ran what.
        fresh_pids = {
            r["pid"]
            for r in records
            if r["type"] == "cell"
            and (r["algorithm"], r["column"]) not in {
                (c["algorithm"], c["column"]) for c in crashed_cells
            }
        }
        assert fresh_pids == {os.getpid()}
        assert crashed_pids.isdisjoint(fresh_pids)

    def test_committed_journal_replays_without_executing(
        self, csr_graph, suite, tmp_path
    ):
        from repro.durability import read_records

        journal = tmp_path / "done.journal.jsonl"
        first = _table(csr_graph, suite, journal=journal)
        appended = len(read_records(journal))

        replayed = _table(csr_graph, suite, journal=journal, resume=True)
        # Nothing new was journaled: every cell came from the replay.
        assert len(read_records(journal)) == appended
        for name in first.algorithms():
            for ours, theirs in zip(replayed.cells[name], first.cells[name]):
                assert ours.estimates == theirs.estimates
                assert ours.api_calls == theirs.api_calls

    def test_resume_against_changed_parameters_is_refused(
        self, csr_graph, suite, tmp_path
    ):
        journal = tmp_path / "run.journal.jsonl"
        _table(csr_graph, suite, journal=journal)
        with pytest.raises(ExperimentError, match="different suite"):
            _table(csr_graph, suite, journal=journal, resume=True, seed=43)
