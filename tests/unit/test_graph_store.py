"""Buffer backends: shm/mmap publish/attach, handles, cleanup semantics."""

import pickle
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, StoreAttachError
from repro.graph.csr import CSRGraph
from repro.graph.store import (
    CSRHandle,
    attach_csr,
    load_csr_npz,
    npz_array_specs,
    publish_csr,
    save_csr_npz,
    spill_csr_to_mmap,
    validate_graph_store,
)
from repro.walks.batched import BatchedWalkEngine


@pytest.fixture(scope="module")
def labeled_csr() -> CSRGraph:
    """A ~400-node random CSR graph with three labels."""
    rng = np.random.default_rng(7)
    edges = rng.integers(0, 400, size=(2400, 2))
    labels = rng.integers(1, 4, size=400)
    return CSRGraph.from_edge_array(edges, num_nodes=400, label_array=labels)


def _assert_same_graph(attached: CSRGraph, original: CSRGraph) -> None:
    assert np.array_equal(attached.indptr, original.indptr)
    assert np.array_equal(attached.indices, original.indices)
    assert np.array_equal(attached.label_array(), original.label_array())
    assert attached.num_nodes == original.num_nodes
    assert attached.num_edges == original.num_edges


class TestValidation:
    def test_known_stores_pass(self):
        for store in ("ram", "shm", "mmap"):
            assert validate_graph_store(store) == store

    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown graph store"):
            validate_graph_store("tape")

    def test_publish_rejects_ram(self, labeled_csr):
        with pytest.raises(ConfigurationError, match="external store"):
            publish_csr(labeled_csr, "ram")

    def test_set_labeled_graphs_not_publishable(self):
        graph = CSRGraph.from_edge_array(np.array([[0, 1], [1, 2]]))
        graph = graph.with_labels(label_sets=[{"a"}, {"b"}, {"a"}])
        with pytest.raises(ConfigurationError, match="label_array"):
            publish_csr(graph, "shm")

    def test_object_node_ids_not_publishable(self):
        graph = CSRGraph(
            ["u", "v"], np.array([0, 1, 2]), np.array([1, 0])
        )
        with pytest.raises(ConfigurationError, match="node ids"):
            publish_csr(graph, "shm")

    def test_attach_rejects_non_handles(self):
        with pytest.raises(ConfigurationError, match="CSRHandle"):
            attach_csr("not-a-handle")


class TestSharedMemory:
    def test_round_trip_and_queries(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            attached = publication.attach()
            _assert_same_graph(attached, labeled_csr)
            assert attached.store == "shm"
            assert attached.count_target_edges(1, 2) == labeled_csr.count_target_edges(1, 2)
            del attached

    def test_attached_buffers_are_read_only(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            attached = publication.attach()
            with pytest.raises(ValueError):
                attached.indices[0] = 0
            del attached

    def test_handle_pickles_in_o1(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            blob = pickle.dumps(publication.handle)
            # The descriptor is a few hundred bytes regardless of |E|.
            assert len(blob) < 1024
            reattached = attach_csr(pickle.loads(blob))
            _assert_same_graph(reattached, labeled_csr)
            del reattached

    def test_attached_graph_repickles_as_handle(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            attached = publication.attach()
            blob = pickle.dumps(attached)
            assert len(blob) < 1024  # O(1), not the adjacency by value
            clone = pickle.loads(blob)
            _assert_same_graph(clone, labeled_csr)
            del attached, clone

    def test_unlink_releases_segment(self, labeled_csr):
        publication = publish_csr(labeled_csr, "shm")
        handle = publication.handle
        publication.close()
        publication.unlink()
        with pytest.raises(StoreAttachError):
            attach_csr(handle)

    def test_unlink_is_idempotent(self, labeled_csr):
        publication = publish_csr(labeled_csr, "shm")
        publication.close()
        publication.unlink()
        publication.unlink()

    def test_leaked_publication_warns_and_cleans(self, labeled_csr):
        publication = publish_csr(labeled_csr, "shm")
        handle = publication.handle
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            publication.__del__()
        assert any(issubclass(w.category, ResourceWarning) for w in caught)
        with pytest.raises(StoreAttachError):
            attach_csr(handle)

    def test_republishing_attached_graph_owns_nothing(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            attached = publication.attach()
            second = publish_csr(attached, "shm")
            assert second.handle == publication.handle
            second.unlink()  # must NOT tear down the original publication
            still_alive = publication.attach()
            _assert_same_graph(still_alive, labeled_csr)
            del attached, still_alive

    def test_fleet_walk_bit_identical_to_ram(self, labeled_csr):
        reference = BatchedWalkEngine(labeled_csr, rng=11).run_fleet(8, 60, burn_in=5)
        with publish_csr(labeled_csr, "shm") as publication:
            attached = publication.attach()
            fleet = BatchedWalkEngine(attached, rng=11).run_fleet(8, 60, burn_in=5)
            assert np.array_equal(fleet.trajectories, reference.trajectories)
            assert np.array_equal(fleet.charged_calls(), reference.charged_calls())
            del attached, fleet


class TestMemoryMapped:
    def test_save_load_round_trip(self, labeled_csr, tmp_path):
        path = save_csr_npz(labeled_csr, tmp_path / "graph.npz")
        attached = load_csr_npz(path)
        _assert_same_graph(attached, labeled_csr)
        assert attached.store == "mmap"
        backing = attached.indices if isinstance(attached.indices, np.memmap) else attached.indices.base
        assert isinstance(backing, np.memmap)

    def test_mmap_buffers_are_read_only(self, labeled_csr, tmp_path):
        attached = load_csr_npz(save_csr_npz(labeled_csr, tmp_path / "g.npz"))
        with pytest.raises(ValueError):
            attached.indptr[0] = 1

    def test_full_load_mode(self, labeled_csr, tmp_path):
        path = save_csr_npz(labeled_csr, tmp_path / "g.npz")
        loaded = load_csr_npz(path, mmap=False)
        _assert_same_graph(loaded, labeled_csr)
        assert loaded.store == "ram"

    def test_mmap_graph_pickles_as_handle(self, labeled_csr, tmp_path):
        attached = load_csr_npz(save_csr_npz(labeled_csr, tmp_path / "g.npz"))
        blob = pickle.dumps(attached)
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        _assert_same_graph(clone, labeled_csr)

    def test_npz_specs_locate_every_member(self, labeled_csr, tmp_path):
        path = save_csr_npz(labeled_csr, tmp_path / "g.npz")
        specs = {spec.key: spec for spec in npz_array_specs(path)}
        assert {"indptr", "indices", "label_array"} <= set(specs)
        for key, spec in specs.items():
            view = np.memmap(
                path, dtype=np.dtype(spec.dtype), mode="r",
                offset=spec.offset, shape=spec.shape,
            )
            assert np.array_equal(view, getattr(labeled_csr, key, None)
                                  if key in ("indptr", "indices")
                                  else labeled_csr.label_array())

    def test_compressed_archives_rejected(self, labeled_csr, tmp_path):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(
            path, indptr=labeled_csr.indptr, indices=labeled_csr.indices
        )
        with pytest.raises(ConfigurationError, match="compressed"):
            npz_array_specs(path)

    def test_spill_reopens_memmapped(self, labeled_csr, tmp_path):
        spilled = spill_csr_to_mmap(labeled_csr, tmp_path / "spill.npz")
        _assert_same_graph(spilled, labeled_csr)
        assert spilled.store == "mmap"
        assert (tmp_path / "spill.npz").exists()

    def test_publish_mmap_spills_and_unlinks(self, labeled_csr, tmp_path):
        publication = publish_csr(labeled_csr, "mmap", directory=tmp_path)
        path = Path(publication.handle.location)
        assert path.exists()
        attached = publication.attach()
        _assert_same_graph(attached, labeled_csr)
        publication.close()
        publication.unlink()
        assert not path.exists()

    def test_publish_reuses_existing_mmap_handle(self, labeled_csr, tmp_path):
        attached = spill_csr_to_mmap(labeled_csr, tmp_path / "g.npz")
        publication = publish_csr(attached, "mmap", directory=tmp_path)
        assert publication.handle.location == str(tmp_path / "g.npz")
        publication.unlink()  # non-owning: the spilled file must survive
        assert (tmp_path / "g.npz").exists()

    def test_fleet_walk_bit_identical_to_ram(self, labeled_csr, tmp_path):
        reference = BatchedWalkEngine(labeled_csr, rng=13).run_fleet(6, 40, burn_in=3)
        attached = load_csr_npz(save_csr_npz(labeled_csr, tmp_path / "g.npz"))
        fleet = BatchedWalkEngine(attached, rng=13).run_fleet(6, 40, burn_in=3)
        assert np.array_equal(fleet.trajectories, reference.trajectories)
        assert np.array_equal(fleet.charged_calls(), reference.charged_calls())


class TestChunkedFallback:
    def test_chunked_counts_match_dense(self, labeled_csr, tmp_path):
        mask = labeled_csr.label_mask(2)
        dense = labeled_csr.neighbor_mask_counts(mask)
        for chunk in (1, 7, 64, 10**6):
            chunked = labeled_csr._neighbor_mask_counts_chunked(mask, chunk_size=chunk)
            assert np.array_equal(chunked, dense)

    def test_mmap_graphs_dispatch_to_chunked(self, labeled_csr, tmp_path, monkeypatch):
        attached = load_csr_npz(save_csr_npz(labeled_csr, tmp_path / "g.npz"))
        calls = []
        original = CSRGraph._neighbor_mask_counts_chunked

        def spy(self, mask, chunk_size=1 << 22):
            calls.append(chunk_size)
            return original(self, mask, chunk_size)

        monkeypatch.setattr(CSRGraph, "_neighbor_mask_counts_chunked", spy)
        counts = attached.neighbor_mask_counts(attached.label_mask(1))
        assert calls, "mmap-backed graph did not use the chunked fallback"
        assert np.array_equal(
            counts, labeled_csr.neighbor_mask_counts(labeled_csr.label_mask(1))
        )

    def test_ground_truth_counts_agree_across_stores(self, labeled_csr, tmp_path):
        attached = load_csr_npz(save_csr_npz(labeled_csr, tmp_path / "g.npz"))
        for pair in ((1, 2), (2, 3), (1, 1)):
            assert attached.count_target_edges(*pair) == labeled_csr.count_target_edges(*pair)

    def test_empty_graph_chunked(self):
        empty = CSRGraph(None, np.array([0]), np.array([], dtype=np.int64))
        counts = empty._neighbor_mask_counts_chunked(np.array([], dtype=bool))
        assert counts.size == 0


class TestHandleShape:
    def test_handle_rejects_ram_store(self):
        with pytest.raises(ConfigurationError):
            CSRHandle("ram", "x", ())

    def test_spec_lookup(self, labeled_csr):
        with publish_csr(labeled_csr, "shm") as publication:
            handle = publication.handle
            assert handle.spec("indptr").shape == (labeled_csr.num_nodes + 1,)
            assert handle.spec("missing") is None


class TestPublishedCaches:
    def test_attached_graph_starts_warm(self, labeled_csr):
        """Masks/incident/count caches computed before publishing travel along."""
        truth = labeled_csr.count_target_edges(1, 2)  # populates all three caches
        with publish_csr(labeled_csr, "shm") as publication:
            assert publication.handle.masks  # manifest recorded
            assert publication.handle.incident
            assert publication.handle.target_counts
            attached = publication.attach()
            assert (1, 2) in attached._target_count_cache
            assert 1 in attached._mask_cache and 2 in attached._mask_cache
            assert np.array_equal(
                attached._incident_cache[(1, 2)],
                labeled_csr.target_incident_counts(1, 2),
            )
            assert attached.count_target_edges(1, 2) == truth
            del attached

    def test_warm_caches_travel_through_mmap_publication(self, labeled_csr, tmp_path):
        labeled_csr.count_target_edges(2, 3)
        publication = publish_csr(labeled_csr, "mmap", directory=tmp_path)
        attached = publication.attach()
        assert (2, 3) in attached._target_count_cache
        assert np.array_equal(
            attached.target_incident_counts(2, 3),
            labeled_csr.target_incident_counts(2, 3),
        )
        publication.close()
        publication.unlink()

    def test_cold_publish_has_empty_manifest(self):
        rng = np.random.default_rng(1)
        graph = CSRGraph.from_edge_array(
            rng.integers(0, 50, size=(200, 2)), num_nodes=50,
            label_array=rng.integers(1, 3, size=50),
        )
        with publish_csr(graph, "shm") as publication:
            assert publication.handle.masks == ()
            assert publication.handle.incident == ()
            attached = publication.attach()
            assert attached.count_target_edges(1, 2) == graph.count_target_edges(1, 2)
            del attached


class TestReviewRegressions:
    def test_del_releases_before_warning_escalates(self, labeled_csr):
        """Under -W error::ResourceWarning the __del__ warn raises — the
        segment must already have been released by then."""
        publication = publish_csr(labeled_csr, "shm")
        handle = publication.handle
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ResourceWarning):
                publication.__del__()
        with pytest.raises(StoreAttachError):  # cleanup happened first
            attach_csr(handle)

    def test_relabeled_attached_graph_pickles_without_segment(self, labeled_csr):
        """with_labels over an shm graph pickles its data by value — the
        SharedMemory owner must not ride along (its unpickle re-attaches
        and re-registers with the resource tracker on < 3.13)."""
        rng = np.random.default_rng(2)
        publication = publish_csr(labeled_csr, "shm")
        attached = publication.attach()
        relabeled = attached.with_labels(
            label_array=rng.integers(1, 3, size=attached.num_nodes)
        )
        blob = pickle.dumps(relabeled)
        del attached, relabeled
        publication.close()
        publication.unlink()
        clone = pickle.loads(blob)  # by value: survives the unlink
        assert clone._buffer_owner is None
        assert np.array_equal(clone.indices, labeled_csr.indices)
        assert clone.count_target_edges(1, 2) >= 0

    def test_export_adopt_label_caches(self, labeled_csr):
        warm = CSRGraph(
            None, labeled_csr.indptr.copy(), labeled_csr.indices.copy(),
            label_array=np.asarray(labeled_csr.label_array()).copy(),
        )
        truth = warm.count_target_edges(1, 2)
        payload = warm.export_label_caches()
        assert payload["counts"][(1, 2)] == truth
        cold = CSRGraph(
            None, labeled_csr.indptr.copy(), labeled_csr.indices.copy(),
            label_array=np.asarray(labeled_csr.label_array()).copy(),
        )
        cold.adopt_label_caches(payload)
        assert cold._target_count_cache[(1, 2)] == truth
        assert 1 in cold._mask_cache and (1, 2) in cold._incident_cache
        # Locally-present entries win over adopted ones.
        local_mask = cold.label_mask(1)
        cold.adopt_label_caches(payload)
        assert cold._mask_cache[1] is local_mask
