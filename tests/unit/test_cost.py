"""Unit tests for the API-cost profiling helper."""

import pytest

from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.cost import CostProfile, format_cost_table, profile_api_costs


@pytest.fixture(scope="module")
def profiles(gender_osn):
    suite = build_algorithm_suite(gender_osn, include_baselines=False)
    return profile_api_costs(
        gender_osn,
        1,
        2,
        sample_size=50,
        repetitions=2,
        algorithms=suite,
        burn_in=20,
        seed=3,
    )


class TestProfileAPICosts:
    def test_one_profile_per_algorithm(self, profiles):
        assert set(profiles) == {
            "NeighborSample-HH",
            "NeighborSample-HT",
            "NeighborExploration-HH",
            "NeighborExploration-HT",
            "NeighborExploration-RW",
        }

    def test_fields(self, profiles):
        for profile in profiles.values():
            assert isinstance(profile, CostProfile)
            assert profile.sample_size == 50
            assert profile.mean_api_calls > 0
            assert profile.calls_per_sample == pytest.approx(
                profile.mean_api_calls / 50
            )

    def test_exploration_costs_more_than_sampling(self, profiles):
        """With abundant labels every sampled node is explored, so
        NeighborExploration must download far more pages per sample."""
        exploration = profiles["NeighborExploration-HH"].mean_api_calls
        sampling = profiles["NeighborSample-HH"].mean_api_calls
        assert exploration > sampling

    def test_invalid_arguments(self, gender_osn):
        with pytest.raises(Exception):
            profile_api_costs(gender_osn, 1, 2, sample_size=0, burn_in=5)

    def test_format_cost_table(self, profiles):
        text = format_cost_table(profiles)
        assert "calls per sample" in text
        assert "NeighborExploration-RW" in text
        assert len(text.splitlines()) == 1 + len(profiles)
