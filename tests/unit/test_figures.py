"""Unit tests for the paper-figure definitions and runner."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    FIGURE_DEFINITIONS,
    PaperFigureResult,
    run_paper_figure,
)
from repro.experiments.sweeps import FrequencyPoint


class TestDefinitions:
    def test_two_figures(self):
        assert set(FIGURE_DEFINITIONS) == {1, 2}
        assert FIGURE_DEFINITIONS[1].dataset == "orkut"
        assert FIGURE_DEFINITIONS[2].dataset == "livejournal"

    def test_budget_is_five_percent(self):
        assert all(d.budget_fraction == 0.05 for d in FIGURE_DEFINITIONS.values())


class TestMonotoneTrend:
    def make_result(self, series):
        definition = FIGURE_DEFINITIONS[1]
        points = [
            FrequencyPoint((i, i + 1), 10, frequency, {"Alg": value})
            for i, (frequency, value) in enumerate(series)
        ]
        config = ExperimentConfig.quick("orkut")
        return PaperFigureResult(definition=definition, points=points, config=config)

    def test_decreasing_series(self):
        result = self.make_result([(0.001, 0.9), (0.01, 0.5), (0.1, 0.1)])
        assert result.monotone_trend("Alg") == -1.0

    def test_increasing_series(self):
        result = self.make_result([(0.001, 0.1), (0.01, 0.5), (0.1, 0.9)])
        assert result.monotone_trend("Alg") == 1.0

    def test_flat_series(self):
        result = self.make_result([(0.001, 0.5), (0.01, 0.5)])
        assert result.monotone_trend("Alg") == 0.0

    def test_single_point_raises(self):
        result = self.make_result([(0.001, 0.5)])
        with pytest.raises(ExperimentError):
            result.monotone_trend("Alg")

    def test_series_extraction(self):
        result = self.make_result([(0.01, 0.4), (0.001, 0.8)])
        series = result.series("Alg")
        assert len(series) == 2


class TestRunPaperFigure:
    def test_unknown_figure(self):
        with pytest.raises(ExperimentError):
            run_paper_figure(3)

    def test_small_run(self):
        config = ExperimentConfig(
            dataset="orkut",
            repetitions=2,
            scale=0.05,
            seed=13,
        )
        result = run_paper_figure(1, config, repetitions=2)
        assert result.definition.figure_number == 1
        assert len(result.points) >= 2
        for point in result.points:
            assert point.true_count > 0
            assert len(point.nrmse_by_algorithm) == 5
