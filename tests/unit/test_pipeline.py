"""Unit tests for the high-level estimation pipeline."""

import pytest

from repro.core.pipeline import (
    ALGORITHMS,
    available_algorithms,
    estimate_target_edge_count,
    resolve_sample_size,
)
from repro.exceptions import ConfigurationError, LabelError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges


class TestRegistry:
    def test_five_algorithms(self):
        assert available_algorithms() == [
            "NeighborSample-HH",
            "NeighborSample-HT",
            "NeighborExploration-HH",
            "NeighborExploration-HT",
            "NeighborExploration-RW",
        ]

    def test_specs_know_their_sampler(self):
        assert ALGORITHMS["NeighborSample-HH"].sampler == "edge"
        assert ALGORITHMS["NeighborExploration-RW"].sampler == "node"


class TestResolveSampleSize:
    def test_explicit_sample_size(self):
        assert resolve_sample_size(1000, sample_size=42) == 42

    def test_budget_fraction(self):
        assert resolve_sample_size(1000, budget_fraction=0.05) == 50

    def test_default_is_five_percent(self):
        assert resolve_sample_size(1000) == 50

    def test_minimum_of_one(self):
        assert resolve_sample_size(10, budget_fraction=0.001) == 1

    def test_both_given_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_sample_size(1000, sample_size=10, budget_fraction=0.1)

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            resolve_sample_size(1000, sample_size=0)
        with pytest.raises(ConfigurationError):
            resolve_sample_size(1000, budget_fraction=1.5)


class TestEstimateTargetEdgeCount:
    @pytest.mark.parametrize("algorithm", available_algorithms())
    def test_every_algorithm_runs(self, gender_osn, algorithm):
        result = estimate_target_edge_count(
            gender_osn, 1, 2, algorithm=algorithm, sample_size=80, burn_in=30, seed=5
        )
        assert result.estimate >= 0
        assert result.estimator == algorithm

    def test_accepts_restricted_api_with_explicit_burn_in(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        result = estimate_target_edge_count(
            api, 1, 2, algorithm="NeighborSample-HH", sample_size=50, burn_in=20, seed=3
        )
        assert result.estimate >= 0

    def test_api_without_burn_in_raises(self, gender_osn):
        api = RestrictedGraphAPI(gender_osn)
        with pytest.raises(ConfigurationError):
            estimate_target_edge_count(api, 1, 2, sample_size=10, seed=3)

    def test_burn_in_derived_from_graph(self, gender_osn):
        result = estimate_target_edge_count(
            gender_osn, 1, 2, algorithm="NeighborSample-HH", sample_size=40, seed=3
        )
        assert result.estimate >= 0

    def test_unknown_algorithm(self, gender_osn):
        with pytest.raises(ConfigurationError):
            estimate_target_edge_count(gender_osn, 1, 2, algorithm="Nope", sample_size=10)

    def test_both_labels_absent_raises(self, gender_osn):
        with pytest.raises(LabelError):
            estimate_target_edge_count(gender_osn, 404, 405, sample_size=10, burn_in=5)

    def test_invalid_graph_type(self):
        with pytest.raises(ConfigurationError):
            estimate_target_edge_count("not a graph", 1, 2, sample_size=10, burn_in=5)

    def test_reasonable_accuracy_on_abundant_labels(self, gender_osn):
        truth = count_target_edges(gender_osn, 1, 2)
        result = estimate_target_edge_count(
            gender_osn,
            1,
            2,
            algorithm="NeighborExploration-HH",
            budget_fraction=0.25,
            burn_in=60,
            seed=11,
        )
        assert result.relative_error(truth) < 0.5

    def test_seed_makes_it_reproducible(self, gender_osn):
        first = estimate_target_edge_count(
            gender_osn, 1, 2, algorithm="NeighborSample-HH", sample_size=60, burn_in=20, seed=9
        )
        second = estimate_target_edge_count(
            gender_osn, 1, 2, algorithm="NeighborSample-HH", sample_size=60, burn_in=20, seed=9
        )
        assert first.estimate == second.estimate
