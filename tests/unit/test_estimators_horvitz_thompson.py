"""Unit tests for the Horvitz–Thompson estimators (Equations 3 and 13)."""

import pytest

from repro.core.estimators import EdgeHorvitzThompsonEstimator, NodeHorvitzThompsonEstimator
from repro.core.samplers.base import EdgeSample, EdgeSampleSet, NodeSample, NodeSampleSet
from repro.exceptions import ConfigurationError, EstimationError, InsufficientSamplesError


def edge_set(samples, num_edges):
    return EdgeSampleSet(samples=samples, num_edges=num_edges, num_nodes=10)


def node_set(samples, num_edges, num_nodes=10):
    return NodeSampleSet(samples=samples, num_edges=num_edges, num_nodes=num_nodes)


class TestEdgeHT:
    def test_formula_without_thinning(self):
        samples = [
            EdgeSample(u=1, v=2, is_target=True, step_index=0),
            EdgeSample(u=3, v=4, is_target=False, step_index=1),
            EdgeSample(u=5, v=6, is_target=True, step_index=2),
        ]
        estimator = EdgeHorvitzThompsonEstimator(thinning_fraction=None)
        result = estimator.estimate(edge_set(samples, num_edges=10))
        inclusion = 1 - (1 - 1 / 10) ** 3
        assert result.estimate == pytest.approx(2 / inclusion)
        assert result.details["inclusion_probability"] == pytest.approx(inclusion)

    def test_duplicate_target_edges_counted_once(self):
        samples = [
            EdgeSample(u=1, v=2, is_target=True, step_index=0),
            EdgeSample(u=2, v=1, is_target=True, step_index=1),  # same edge reversed
        ]
        estimator = EdgeHorvitzThompsonEstimator(thinning_fraction=None)
        result = estimator.estimate(edge_set(samples, num_edges=10))
        assert result.details["distinct_target_edges"] == 1.0

    def test_thinning_reduces_sample_size(self):
        samples = [
            EdgeSample(u=i, v=i + 1, is_target=False, step_index=i) for i in range(100)
        ]
        estimator = EdgeHorvitzThompsonEstimator(thinning_fraction=0.1)
        result = estimator.estimate(edge_set(samples, num_edges=1000))
        assert result.sample_size == 10
        assert result.details["pre_thinning_k"] == 100.0

    def test_zero_targets_gives_zero(self):
        samples = [EdgeSample(u=1, v=2, is_target=False, step_index=0)]
        result = EdgeHorvitzThompsonEstimator(None).estimate(edge_set(samples, 10))
        assert result.estimate == 0.0

    def test_empty_raises(self):
        with pytest.raises(InsufficientSamplesError):
            EdgeHorvitzThompsonEstimator(None).estimate(EdgeSampleSet(num_edges=10))

    def test_missing_prior_knowledge_raises(self):
        samples = [EdgeSample(u=1, v=2, is_target=True, step_index=0)]
        with pytest.raises(EstimationError):
            EdgeHorvitzThompsonEstimator(None).estimate(edge_set(samples, 0))

    def test_invalid_thinning_fraction(self):
        with pytest.raises(ConfigurationError):
            EdgeHorvitzThompsonEstimator(thinning_fraction=0.0)

    def test_single_sample_all_targets_estimates_num_edges(self):
        # With k = 1 the inclusion probability is 1/|E|, so one observed
        # target edge extrapolates to |E| — the HT analogue of the HH case.
        samples = [EdgeSample(u=1, v=2, is_target=True, step_index=0)]
        result = EdgeHorvitzThompsonEstimator(None).estimate(edge_set(samples, 25))
        assert result.estimate == pytest.approx(25.0)


class TestNodeHT:
    def test_formula_without_thinning(self):
        samples = [
            NodeSample(node="a", degree=4, has_target_label=True, incident_target_edges=2, step_index=0),
            NodeSample(node="b", degree=2, has_target_label=False, incident_target_edges=0, step_index=1),
        ]
        estimator = NodeHorvitzThompsonEstimator(thinning_fraction=None)
        result = estimator.estimate(node_set(samples, num_edges=10))
        inclusion_a = 1 - (1 - 4 / 20) ** 2
        assert result.estimate == pytest.approx(0.5 * 2 / inclusion_a)

    def test_duplicate_nodes_counted_once(self):
        sample = NodeSample(
            node="a", degree=4, has_target_label=True, incident_target_edges=2, step_index=0
        )
        duplicate = NodeSample(
            node="a", degree=4, has_target_label=True, incident_target_edges=2, step_index=1
        )
        estimator = NodeHorvitzThompsonEstimator(thinning_fraction=None)
        single = estimator.estimate(node_set([sample], num_edges=10))
        double = estimator.estimate(node_set([sample, duplicate], num_edges=10))
        assert double.details["distinct_nodes"] == 1.0
        # the duplicate only changes k (the inclusion probability), not the sum
        assert double.estimate < single.estimate

    def test_zero_targets_gives_zero(self):
        samples = [
            NodeSample(node="a", degree=4, has_target_label=True, incident_target_edges=0, step_index=0)
        ]
        result = NodeHorvitzThompsonEstimator(None).estimate(node_set(samples, 10))
        assert result.estimate == 0.0

    def test_zero_degree_contributing_node_raises(self):
        samples = [
            NodeSample(node="a", degree=0, has_target_label=True, incident_target_edges=1, step_index=0)
        ]
        with pytest.raises(EstimationError):
            NodeHorvitzThompsonEstimator(None).estimate(node_set(samples, 10))

    def test_empty_raises(self):
        with pytest.raises(InsufficientSamplesError):
            NodeHorvitzThompsonEstimator(None).estimate(NodeSampleSet(num_edges=5, num_nodes=5))

    def test_thinning_applied(self):
        samples = [
            NodeSample(node=i, degree=3, has_target_label=False, incident_target_edges=0, step_index=i)
            for i in range(50)
        ]
        result = NodeHorvitzThompsonEstimator(thinning_fraction=0.1).estimate(
            node_set(samples, num_edges=100)
        )
        assert result.sample_size == 10
