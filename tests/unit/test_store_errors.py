"""StoreAttachError: typed, located, retryable attach failures.

A worker (or the service) attaching a CSR publication that has vanished
must get a :class:`StoreAttachError` naming the segment or sidecar —
never a bare :class:`FileNotFoundError` — because the retry policies
key off its ``retryable`` flag and operators key off the location in
the message.
"""

import os

import numpy as np
import pytest

from repro.exceptions import StoreAttachError
from repro.graph.csr import CSRGraph
from repro.graph.store import attach_csr, publish_csr
from repro.resilience import Retry


@pytest.fixture(scope="module")
def csr_graph() -> CSRGraph:
    rng = np.random.default_rng(5)
    edges = rng.integers(0, 60, size=(200, 2))
    labels = rng.integers(1, 3, size=60)
    return CSRGraph.from_edge_array(edges, num_nodes=60, label_array=labels)


class TestShmAttach:
    def test_unlinked_segment_raises_named_retryable_error(self, csr_graph):
        publication = publish_csr(csr_graph, "shm")
        handle = publication.handle
        publication.close()
        publication.unlink()
        with pytest.raises(StoreAttachError) as excinfo:
            attach_csr(handle)
        assert excinfo.value.retryable is True
        assert excinfo.value.location == handle.location
        assert handle.location in str(excinfo.value)

    def test_live_segment_still_attaches(self, csr_graph):
        with publish_csr(csr_graph, "shm") as publication:
            attached = attach_csr(publication.handle)
            assert attached.num_nodes == csr_graph.num_nodes


class TestMmapAttach:
    def test_deleted_sidecar_raises_named_retryable_error(self, csr_graph, tmp_path):
        publication = publish_csr(csr_graph, "mmap", directory=tmp_path)
        handle = publication.handle
        os.remove(handle.location)
        with pytest.raises(StoreAttachError) as excinfo:
            attach_csr(handle)
        assert excinfo.value.retryable is True
        assert excinfo.value.location == handle.location
        assert handle.location in str(excinfo.value)


class TestRetryIntegration:
    def test_attach_is_retried_as_a_transient_failure(self, csr_graph):
        """The worker-init policy: a dead handle costs *attempts* tries."""
        publication = publish_csr(csr_graph, "shm")
        handle = publication.handle
        publication.close()
        publication.unlink()
        attempts = []

        def attach():
            attempts.append(True)
            return attach_csr(handle)

        slept = []
        with pytest.raises(StoreAttachError):
            Retry(attempts=3, sleep=slept.append).call(attach)
        assert len(attempts) == 3 and len(slept) == 2
