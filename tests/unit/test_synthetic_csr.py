"""CSR-native generators: shapes, determinism, and statistical laws.

The fast tier pins structural invariants (cleaned output, reproducible
seeds, expected edge counts); the slow tier runs the degree-sequence
Kolmogorov–Smirnov comparisons against the networkx reference
generators — the two paths draw from different random streams but must
sample the same random-graph laws.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    barabasi_albert_csr,
    barabasi_albert_edges,
    barabasi_albert_osn,
    chung_lu_csr,
    chung_lu_edges,
    chung_lu_osn,
    erdos_renyi_csr,
    erdos_renyi_edges,
    erdos_renyi_osn,
    powerlaw_degree_sequence,
)
from repro.exceptions import ConfigurationError
from repro.graph.cleaning import largest_component_mask
from repro.graph.csr import CSRGraph

KS_ALPHA = 0.005
"""Reject law equivalence only on overwhelming evidence."""


def degrees_of(graph) -> np.ndarray:
    if isinstance(graph, CSRGraph):
        return np.asarray(graph.degrees)
    return np.asarray([graph.degree(node) for node in graph.nodes()])


class TestPowerlawDegreeSequence:
    def test_mean_and_monotonicity(self):
        weights = powerlaw_degree_sequence(5000, 12.0)
        assert weights.mean() == pytest.approx(12.0, rel=1e-6)
        assert (np.diff(weights) <= 1e-12).all()  # non-increasing

    def test_cap_applies(self):
        weights = powerlaw_degree_sequence(5000, 12.0, max_degree=40)
        # Capping then re-normalising may exceed the cap only marginally.
        assert weights.max() <= 40 * 1.5

    def test_rejects_shallow_exponent(self):
        with pytest.raises(ConfigurationError):
            powerlaw_degree_sequence(100, 5.0, exponent=2.0)


class TestChungLuCSR:
    def test_connected_and_cleaned(self):
        graph = chung_lu_csr(powerlaw_degree_sequence(2000, 10.0), rng=1)
        assert int(np.asarray(graph.degrees).min()) >= 1
        mask = largest_component_mask(graph.indptr, graph.indices)
        assert mask.all()

    def test_deterministic_per_seed(self):
        weights = powerlaw_degree_sequence(500, 8.0)
        first = chung_lu_csr(weights, rng=9)
        second = chung_lu_csr(weights, rng=9)
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)
        assert not np.array_equal(
            first.indices, chung_lu_csr(weights, rng=10).indices
        )

    def test_average_degree_close_to_target(self):
        graph = chung_lu_csr(powerlaw_degree_sequence(5000, 14.0), rng=2)
        average = 2 * graph.num_edges / graph.num_nodes
        # Dedupe and self-loop removal shave a few percent off.
        assert 0.8 * 14.0 <= average <= 14.0 * 1.05

    def test_edge_array_shape(self):
        edges = chung_lu_edges([3.0, 3.0, 3.0, 3.0], rng=0)
        assert edges.ndim == 2 and edges.shape[1] == 2
        assert edges.shape[0] == 6  # sum(w)/2

    def test_rejects_degenerate_weights(self):
        with pytest.raises(ConfigurationError):
            chung_lu_edges([], rng=0)
        with pytest.raises(ConfigurationError):
            chung_lu_edges([0.0, 0.0], rng=0)
        with pytest.raises(ConfigurationError):
            chung_lu_edges([1.0, -1.0], rng=0)


class TestBarabasiAlbertCSR:
    def test_structure(self):
        graph = barabasi_albert_csr(2000, 4, rng=3)
        assert graph.num_nodes == 2000  # BA graphs are connected by construction
        # m edges per new node minus the rare collapsed duplicates
        assert graph.num_edges <= 4 * (2000 - 4)
        assert graph.num_edges >= int(0.97 * 4 * (2000 - 4))

    def test_edges_reference_only_earlier_nodes(self):
        edges = barabasi_albert_edges(300, 3, rng=4)
        assert (edges[:, 1] < edges[:, 0]).all()

    def test_deterministic_per_seed(self):
        first = barabasi_albert_edges(400, 2, rng=5)
        second = barabasi_albert_edges(400, 2, rng=5)
        assert np.array_equal(first, second)

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_csr(5, 5, rng=0)


class TestErdosRenyiCSR:
    def test_edge_count_near_expectation(self):
        n, p = 3000, 0.004
        graph = erdos_renyi_csr(n, p, rng=6, keep_largest_component=False)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 5 * np.sqrt(expected)

    def test_endpoints_distinct(self):
        edges = erdos_renyi_edges(100, 0.05, rng=7)
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_csr(10, 1.5, rng=0)


@pytest.mark.slow
class TestDegreeLawEquivalence:
    """KS tests: CSR-native generators vs their networkx twins."""

    def test_chung_lu(self):
        from scipy import stats

        weights = powerlaw_degree_sequence(4000, 10.0)
        vector = chung_lu_csr(weights, rng=11)
        reference = chung_lu_osn([float(w) for w in weights], rng=11)
        _, p_value = stats.ks_2samp(degrees_of(vector), degrees_of(reference))
        assert p_value > KS_ALPHA

    def test_barabasi_albert(self):
        from scipy import stats

        vector = barabasi_albert_csr(4000, 4, rng=12)
        reference = barabasi_albert_osn(4000, 4, rng=12)
        _, p_value = stats.ks_2samp(degrees_of(vector), degrees_of(reference))
        assert p_value > KS_ALPHA

    def test_erdos_renyi(self):
        from scipy import stats

        vector = erdos_renyi_csr(4000, 0.003, rng=13)
        reference = erdos_renyi_osn(4000, 0.003, rng=13)
        _, p_value = stats.ks_2samp(degrees_of(vector), degrees_of(reference))
        assert p_value > KS_ALPHA
