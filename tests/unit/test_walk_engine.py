"""Unit tests for the random-walk engine."""

import pytest

from repro.exceptions import ConfigurationError, WalkError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph
from repro.walks.engine import RandomWalk, WalkResult
from repro.walks.kernels import MetropolisHastingsKernel, SimpleRandomWalkKernel


@pytest.fixture
def path_api():
    graph = LabeledGraph.from_edges([(1, 2), (2, 3), (3, 4)])
    return RestrictedGraphAPI(graph)


class TestWalkResult:
    def test_length_and_distinct(self):
        result = WalkResult(nodes=[1, 2, 1], degrees=[1, 2, 1], edges=[None, (1, 2), (2, 1)])
        assert len(result) == 3
        assert result.distinct_nodes() == {1, 2}

    def test_traversed_edges_skips_self_loops(self):
        result = WalkResult(nodes=[1, 1, 2], degrees=[1, 1, 2], edges=[(2, 1), None, (1, 2)])
        assert result.traversed_edges() == [(2, 1), (1, 2)]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(WalkError):
            WalkResult(nodes=[1], degrees=[], edges=[])


class TestRandomWalk:
    def test_collects_requested_samples(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), burn_in=5, rng=1)
        result = walk.run(10)
        assert len(result) == 10
        assert result.burn_in == 5

    def test_zero_samples(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=1)
        assert len(walk.run(0)) == 0

    def test_consecutive_nodes_are_adjacent(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=2)
        result = walk.run(20, start_node=1)
        for edge in result.edges:
            assert edge is not None
            previous, current = edge
            assert current in path_api.neighbors(previous)

    def test_degrees_match_graph(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=3)
        result = walk.run(15, start_node=2)
        for node, degree in zip(result.nodes, result.degrees):
            assert degree == path_api.degree(node)

    def test_start_node_respected(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), burn_in=0, rng=4)
        result = walk.run(1, start_node=1)
        assert result.start_node == 1
        # with burn_in 0 the first collected node is a neighbor of the start
        assert result.nodes[0] in path_api.neighbors(1)

    def test_seeded_walks_are_reproducible(self, path_api):
        first = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=7).run(25)
        second = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=7).run(25)
        assert first.nodes == second.nodes

    def test_different_seeds_differ(self, path_api):
        first = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=7).run(25)
        second = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=8).run(25)
        assert first.nodes != second.nodes

    def test_collect_every_spaces_samples(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=9)
        result = walk.run(5, collect_every=3, start_node=1)
        assert len(result) == 5

    def test_collect_every_must_be_positive(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), rng=9)
        with pytest.raises(ConfigurationError):
            walk.run(5, collect_every=0)

    def test_negative_burn_in_rejected(self, path_api):
        with pytest.raises(ConfigurationError):
            RandomWalk(path_api, SimpleRandomWalkKernel(), burn_in=-1)

    def test_self_loop_kernel_records_none_edge(self, path_api):
        # MH on a path self-loops often (degree imbalance), which must be
        # recorded as edge=None rather than a fake edge.
        walk = RandomWalk(path_api, MetropolisHastingsKernel(), rng=11)
        result = walk.run(50, start_node=2)
        assert any(edge is None for edge in result.edges)

    def test_run_independent(self, path_api):
        walk = RandomWalk(path_api, SimpleRandomWalkKernel(), burn_in=2, rng=5)
        results = walk.run_independent(4, samples_per_walk=2)
        assert len(results) == 4
        assert all(len(result) == 2 for result in results)

    def test_isolated_node_raises(self):
        graph = LabeledGraph()
        graph.add_node("alone")
        api = RestrictedGraphAPI(graph)
        walk = RandomWalk(api, SimpleRandomWalkKernel(), rng=1)
        with pytest.raises(WalkError):
            walk.run(1, start_node="alone")
