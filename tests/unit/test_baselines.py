"""Unit tests for the EX-* baseline adaptations on the line graph."""

import pytest

from repro.baselines import (
    BASELINE_NAMES,
    ExGeneralMaximumDegreeBaseline,
    ExMaximumDegreeBaseline,
    ExMetropolisHastingsBaseline,
    ExReweightedBaseline,
    ExRejectionControlledMHBaseline,
    line_graph_max_degree,
    make_baseline,
)
from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges


class TestLineGraphMaxDegree:
    def test_triangle(self, triangle_graph):
        # every edge joins two degree-2 nodes: degree in G' is 2 + 2 - 2 = 2
        assert line_graph_max_degree(triangle_graph) == 2

    def test_star(self, star_graph):
        # edges join the hub (degree 5) with a leaf (degree 1): 5 + 1 - 2 = 4
        assert line_graph_max_degree(star_graph) == 4


class TestFactory:
    def test_names(self):
        assert set(BASELINE_NAMES) == {"EX-RW", "EX-MHRW", "EX-MDRW", "EX-RCMH", "EX-GMD"}

    def test_make_each(self):
        assert isinstance(make_baseline("EX-RW"), ExReweightedBaseline)
        assert isinstance(make_baseline("EX-MHRW"), ExMetropolisHastingsBaseline)
        assert isinstance(make_baseline("EX-MDRW", line_max_degree=10), ExMaximumDegreeBaseline)
        assert isinstance(make_baseline("EX-RCMH", rcmh_alpha=0.1), ExRejectionControlledMHBaseline)
        assert isinstance(
            make_baseline("EX-GMD", line_max_degree=10, gmd_delta=0.4),
            ExGeneralMaximumDegreeBaseline,
        )

    def test_md_requires_max_degree(self):
        with pytest.raises(ConfigurationError):
            make_baseline("EX-MDRW")
        with pytest.raises(ConfigurationError):
            make_baseline("EX-GMD")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_baseline("EX-WHAT")

    def test_invalid_max_degree(self):
        with pytest.raises(ConfigurationError):
            ExMaximumDegreeBaseline(0)


class TestEstimation:
    @pytest.fixture(scope="class")
    def setup(self, gender_osn):
        max_degree = line_graph_max_degree(gender_osn)
        truth = count_target_edges(gender_osn, 1, 2)
        return gender_osn, max_degree, truth

    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_each_baseline_produces_sane_estimate(self, setup, name):
        graph, max_degree, truth = setup
        baseline = make_baseline(name, line_max_degree=max_degree)
        api = RestrictedGraphAPI(graph)
        result = baseline.estimate(api, 1, 2, k=600, burn_in=50, rng=17)
        assert result.estimator == name
        assert result.estimate >= 0
        # Abundant labels + a decent walk length: within a factor of 2.5.
        assert truth / 2.5 < result.estimate < truth * 2.5

    def test_api_calls_are_charged(self, setup):
        graph, max_degree, _ = setup
        api = RestrictedGraphAPI(graph)
        make_baseline("EX-RW").estimate(api, 1, 2, k=50, burn_in=10, rng=3)
        assert api.api_calls > 0

    def test_estimate_reproducible(self, setup):
        graph, max_degree, _ = setup
        baseline = make_baseline("EX-MHRW")
        first = baseline.estimate(RestrictedGraphAPI(graph), 1, 2, k=80, burn_in=10, rng=5)
        second = baseline.estimate(RestrictedGraphAPI(graph), 1, 2, k=80, burn_in=10, rng=5)
        assert first.estimate == second.estimate

    def test_invalid_k(self, setup):
        graph, _, _ = setup
        with pytest.raises(ConfigurationError):
            make_baseline("EX-RW").estimate(RestrictedGraphAPI(graph), 1, 2, k=0)

    def test_zero_target_labels_give_zero_estimate(self, setup):
        graph, _, _ = setup
        baseline = make_baseline("EX-RW")
        result = baseline.estimate(RestrictedGraphAPI(graph), 404, 405, k=50, burn_in=10, rng=2)
        assert result.estimate == 0.0

    def test_details_record_hits(self, setup):
        graph, _, _ = setup
        result = make_baseline("EX-MHRW").estimate(
            RestrictedGraphAPI(graph), 1, 2, k=100, burn_in=10, rng=4
        )
        assert result.details["target_hits"] >= 0
