"""Unit tests for the experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    DEFAULT_SAMPLE_FRACTIONS,
    ENV_JOBS,
    ENV_REPETITIONS,
    ENV_SCALE,
    ExperimentConfig,
)


class TestDefaults:
    def test_default_sample_fractions_match_paper(self):
        assert DEFAULT_SAMPLE_FRACTIONS[0] == pytest.approx(0.005)
        assert DEFAULT_SAMPLE_FRACTIONS[-1] == pytest.approx(0.05)
        assert len(DEFAULT_SAMPLE_FRACTIONS) == 10

    def test_paper_faithful_preset(self):
        config = ExperimentConfig.paper_faithful("facebook")
        assert config.repetitions == 200
        assert config.sample_fractions == DEFAULT_SAMPLE_FRACTIONS
        assert config.scale == 1.0

    def test_quick_preset(self):
        config = ExperimentConfig.quick("pokec", target_pair_index=2)
        assert config.repetitions == 10
        assert config.dataset == "pokec"
        assert config.target_pair_index == 2


class TestValidation:
    def test_invalid_repetitions(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", repetitions=0)

    def test_empty_sample_fractions(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", sample_fractions=())

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", sample_fractions=(0.0,))

    def test_invalid_execution(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", execution="warp")

    def test_invalid_n_jobs(self):
        with pytest.raises(Exception):
            ExperimentConfig(dataset="facebook", n_jobs=0)

    def test_fleet_execution_accepted(self):
        config = ExperimentConfig(dataset="facebook", execution="fleet", n_jobs=4)
        assert config.execution == "fleet"
        assert config.n_jobs == 4

    def test_jobs_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        config = ExperimentConfig(dataset="facebook").apply_environment()
        assert config.n_jobs == 3

    def test_pinned_fields_beat_environment(self, monkeypatch):
        """Explicit values (CLI flags) must not be stomped by REPRO_*."""
        monkeypatch.setenv(ENV_JOBS, "16")
        monkeypatch.setenv(ENV_REPETITIONS, "500")
        config = ExperimentConfig(
            dataset="facebook",
            repetitions=7,
            n_jobs=1,
            pinned=("repetitions", "n_jobs"),
        ).apply_environment()
        assert config.n_jobs == 1
        assert config.repetitions == 7

    def test_negative_pair_index(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="facebook", target_pair_index=-1)


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        config = ExperimentConfig.quick("facebook")
        updated = config.with_overrides(repetitions=3)
        assert updated.repetitions == 3
        assert config.repetitions == 10

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv(ENV_REPETITIONS, "7")
        monkeypatch.setenv(ENV_SCALE, "0.125")
        config = ExperimentConfig.quick("facebook").apply_environment()
        assert config.repetitions == 7
        assert config.scale == 0.125

    def test_environment_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_REPETITIONS, raising=False)
        monkeypatch.delenv(ENV_SCALE, raising=False)
        config = ExperimentConfig.quick("facebook")
        assert config.apply_environment() == config


class TestGraphStoreConfig:
    def test_default_is_ram(self):
        config = ExperimentConfig(dataset="facebook")
        assert config.graph_store == "ram"

    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown graph store"):
            ExperimentConfig(dataset="facebook", graph_store="tape")

    def test_external_store_requires_csr_representation(self):
        with pytest.raises(ConfigurationError, match="representation='csr'"):
            ExperimentConfig(dataset="facebook", graph_store="shm")

    def test_shm_with_csr_accepted(self):
        config = ExperimentConfig(
            dataset="facebook",
            representation="csr",
            execution="fleet",
            graph_store="shm",
        )
        assert config.graph_store == "shm"

    def test_mmap_with_csr_accepted(self):
        config = ExperimentConfig(
            dataset="facebook",
            representation="csr",
            reuse="prefix",
            graph_store="mmap",
        )
        assert config.graph_store == "mmap"
