"""Unit tests for the trial runner and NRMSE table builder."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import NRMSETable, TrialOutcome, compare_algorithms, run_trials
from repro.graph.statistics import count_target_edges


@pytest.fixture(scope="module")
def suite(gender_osn):
    return build_algorithm_suite(gender_osn, include_baselines=False)


class TestRunTrials:
    def test_outcome_fields(self, gender_osn, suite):
        outcome = run_trials(
            gender_osn,
            1,
            2,
            suite["NeighborSample-HH"],
            "NeighborSample-HH",
            sample_size=40,
            repetitions=5,
            burn_in=20,
            seed=1,
        )
        assert outcome.repetitions == 5
        assert outcome.sample_size == 40
        assert outcome.true_count == count_target_edges(gender_osn, 1, 2)
        assert outcome.nrmse >= 0
        assert outcome.mean_estimate > 0
        assert outcome.mean_api_calls > 0

    def test_reproducible_with_seed(self, gender_osn, suite):
        args = dict(sample_size=30, repetitions=4, burn_in=15, seed=42)
        first = run_trials(
            gender_osn, 1, 2, suite["NeighborExploration-HH"], "NeighborExploration-HH", **args
        )
        second = run_trials(
            gender_osn, 1, 2, suite["NeighborExploration-HH"], "NeighborExploration-HH", **args
        )
        assert first.estimates == second.estimates

    def test_no_target_edges_raises(self, gender_osn, suite):
        with pytest.raises(ExperimentError):
            run_trials(
                gender_osn,
                404,
                405,
                suite["NeighborSample-HH"],
                "NeighborSample-HH",
                sample_size=10,
                repetitions=2,
                burn_in=5,
                seed=1,
            )

    def test_empty_outcome_guards(self):
        outcome = TrialOutcome(algorithm="x", sample_size=5, true_count=10)
        with pytest.raises(ExperimentError):
            _ = outcome.mean_estimate
        assert outcome.mean_api_calls == 0.0


class TestCompareAlgorithms:
    @pytest.fixture(scope="class")
    def table(self, gender_osn, suite):
        return compare_algorithms(
            gender_osn,
            1,
            2,
            sample_fractions=[0.02, 0.05],
            repetitions=4,
            algorithms=suite,
            burn_in=20,
            seed=7,
            dataset_name="toy",
        )

    def test_structure(self, table, suite):
        assert isinstance(table, NRMSETable)
        assert table.dataset == "toy"
        assert list(table.cells) == list(suite)
        assert len(table.sample_sizes) == 2
        assert all(len(outcomes) == 2 for outcomes in table.cells.values())

    def test_sample_sizes_derived_from_fractions(self, table, gender_osn):
        assert table.sample_sizes[0] == pytest.approx(0.02 * gender_osn.num_nodes, abs=1)
        assert table.sample_sizes[1] > table.sample_sizes[0]

    def test_nrmse_row(self, table):
        row = table.nrmse_row("NeighborSample-HH")
        assert len(row) == 2
        assert all(value >= 0 for value in row)

    def test_best_algorithm(self, table):
        name, value = table.best_algorithm()
        assert name in table.cells
        assert value == min(outcomes[-1].nrmse for outcomes in table.cells.values())

    def test_progress_callback(self, gender_osn, suite):
        seen = []
        compare_algorithms(
            gender_osn,
            1,
            2,
            sample_fractions=[0.02],
            repetitions=2,
            algorithms={"NeighborSample-HH": suite["NeighborSample-HH"]},
            burn_in=10,
            seed=3,
            progress=lambda name, size, frac: seen.append((name, size, frac)),
        )
        assert seen and seen[-1][2] == pytest.approx(1.0)

    def test_empty_table_best_raises(self):
        table = NRMSETable(
            dataset="x", target_pair=(1, 2), true_count=5, sample_sizes=[], sample_fractions=[]
        )
        with pytest.raises(ExperimentError):
            table.best_algorithm()
