"""Statistical integration tests: the estimators converge to the truth.

These tests run full sampling + estimation pipelines on mid-sized
synthetic OSNs and check that repeated estimates land near the ground
truth.  Tolerances are wide enough to make random failures vanishingly
unlikely (seeds are fixed anyway) but tight enough to catch a wrong
inclusion probability, a missing factor of 2, or a broken walk.
"""

import statistics

import pytest

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.utils.rng import spawn_rngs

REPETITIONS = 30
SAMPLE_SIZE = 150
BURN_IN = 60


@pytest.fixture(scope="module")
def truth(gender_osn):
    return count_target_edges(gender_osn, 1, 2)


def repeated_edge_estimates(graph, estimator, repetitions=REPETITIONS, k=SAMPLE_SIZE):
    estimates = []
    for rng in spawn_rngs(101, repetitions):
        api = RestrictedGraphAPI(graph)
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=BURN_IN, rng=rng)
        estimates.append(estimator.estimate(sampler.sample(k)).estimate)
    return estimates


def repeated_node_estimates(graph, estimator, repetitions=REPETITIONS, k=SAMPLE_SIZE):
    estimates = []
    for rng in spawn_rngs(202, repetitions):
        api = RestrictedGraphAPI(graph)
        sampler = NeighborExplorationSampler(api, 1, 2, burn_in=BURN_IN, rng=rng)
        estimates.append(estimator.estimate(sampler.sample(k)).estimate)
    return estimates


class TestMeanConvergence:
    def test_neighbor_sample_hh_is_unbiased(self, gender_osn, truth):
        estimates = repeated_edge_estimates(gender_osn, EdgeHansenHurwitzEstimator())
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_neighbor_sample_ht_close_to_truth(self, gender_osn, truth):
        estimates = repeated_edge_estimates(gender_osn, EdgeHorvitzThompsonEstimator())
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.35)

    def test_neighbor_exploration_hh_is_unbiased(self, gender_osn, truth):
        estimates = repeated_node_estimates(gender_osn, NodeHansenHurwitzEstimator())
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_neighbor_exploration_ht_close_to_truth(self, gender_osn, truth):
        estimates = repeated_node_estimates(gender_osn, NodeHorvitzThompsonEstimator())
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.35)

    def test_neighbor_exploration_rw_consistent(self, gender_osn, truth):
        estimates = repeated_node_estimates(gender_osn, NodeReweightedEstimator())
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)


class TestErrorShrinksWithBudget:
    def test_neighbor_sample_hh(self, gender_osn, truth):
        small = repeated_edge_estimates(gender_osn, EdgeHansenHurwitzEstimator(), k=40)
        large = repeated_edge_estimates(gender_osn, EdgeHansenHurwitzEstimator(), k=400)
        error_small = statistics.mean(abs(e - truth) for e in small)
        error_large = statistics.mean(abs(e - truth) for e in large)
        assert error_large < error_small

    def test_neighbor_exploration_hh(self, gender_osn, truth):
        small = repeated_node_estimates(gender_osn, NodeHansenHurwitzEstimator(), k=40)
        large = repeated_node_estimates(gender_osn, NodeHansenHurwitzEstimator(), k=400)
        error_small = statistics.mean(abs(e - truth) for e in small)
        error_large = statistics.mean(abs(e - truth) for e in large)
        assert error_large < error_small


class TestEstimatesScaleWithTruth:
    def test_rarer_pair_gets_smaller_estimate(self, rare_label_osn):
        """Estimates must track the ordering of the true counts."""
        from repro.graph.statistics import edge_label_histogram

        histogram = sorted(
            (item for item in edge_label_histogram(rare_label_osn).items() if item[0][0] != item[0][1]),
            key=lambda item: item[1],
        )
        rare_pair, rare_count = histogram[len(histogram) // 4]
        frequent_pair, frequent_count = histogram[-1]
        assert rare_count < frequent_count

        def mean_estimate(pair):
            estimates = []
            for rng in spawn_rngs(77, 20):
                api = RestrictedGraphAPI(rare_label_osn)
                sampler = NeighborExplorationSampler(
                    api, pair[0], pair[1], burn_in=BURN_IN, rng=rng
                )
                estimates.append(
                    NodeHansenHurwitzEstimator().estimate(sampler.sample(200)).estimate
                )
            return statistics.mean(estimates)

        assert mean_estimate(rare_pair) < mean_estimate(frequent_pair)
