"""Statistical equivalence of the EX-* line-graph fleets and the
sequential reference baselines.

The fleet path walks the line graph implicitly with vectorized
accept/reject masks and numpy random streams, so its estimates cannot
be bit-identical to the sequential :meth:`LineGraphBaseline.estimate`
loop — the guarantee is distributional: for every EX-* baseline, the
fleet's per-trial estimates and per-trial charged-call ledgers must be
drawn from the same law as sequential trials.

Mirrors ``tests/integration/test_fleet_equivalence.py`` (the proposed
algorithms' suite): a two-sample Kolmogorov–Smirnov test over ≥ 60
independent trials per baseline, plus a relative-mean tolerance.
"""

import numpy as np
import pytest
from scipy import stats

from repro.baselines import BASELINE_NAMES
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import run_trials
from repro.graph.statistics import count_target_edges

#: Trials per side (matching the proposed-algorithm KS suite).
NUM_TRIALS = 60
BURN_IN = 25
SAMPLE_SIZE = 80

#: Reject equivalence only on overwhelming evidence.
KS_ALPHA = 0.005


def _outcome(graph, suite, baseline, execution, seed):
    return run_trials(
        graph,
        1,
        2,
        suite[baseline],
        baseline,
        sample_size=SAMPLE_SIZE,
        repetitions=NUM_TRIALS,
        burn_in=BURN_IN,
        seed=seed,
        execution=execution,
    )


@pytest.mark.slow
class TestBaselineFleetStatisticalLayer:
    """Line-fleet EX-* estimates vs sequential reference over >= 60 trials."""

    @pytest.fixture(scope="class")
    def suite(self, gender_osn):
        return build_algorithm_suite(gender_osn)

    @pytest.mark.parametrize("baseline", BASELINE_NAMES)
    def test_estimate_distributions_match(self, gender_osn, suite, baseline):
        sequential = np.asarray(
            _outcome(gender_osn, suite, baseline, "sequential", seed=101).estimates
        )
        fleet = np.asarray(
            _outcome(gender_osn, suite, baseline, "fleet", seed=202).estimates
        )

        statistic, p_value = stats.ks_2samp(sequential, fleet)
        assert p_value > KS_ALPHA, (
            f"{baseline}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "line-fleet estimates are not distributed like sequential estimates"
        )

        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(sequential.mean() - fleet.mean())
        assert mean_gap < 0.15 * truth, (
            f"{baseline}: execution means differ by {mean_gap:.1f} "
            f"({100 * mean_gap / truth:.1f}% of the true count {truth})"
        )

    @pytest.mark.parametrize("baseline", ["EX-MHRW", "EX-MDRW", "EX-GMD"])
    def test_charged_calls_distributions_match(self, gender_osn, suite, baseline):
        """The ledgers must agree in distribution too — including the
        MH-family rejection probes (EX-MHRW) and the self-loop-heavy
        MD walks, whose crawls download far fewer distinct pages."""
        sequential = np.asarray(
            _outcome(gender_osn, suite, baseline, "sequential", seed=303).api_calls
        )
        fleet = np.asarray(
            _outcome(gender_osn, suite, baseline, "fleet", seed=404).api_calls
        )
        statistic, p_value = stats.ks_2samp(sequential, fleet)
        assert p_value > KS_ALPHA, (
            f"{baseline}: charged-call KS statistic {statistic:.3f} "
            f"(p={p_value:.4f})"
        )

    def test_prefix_columns_distributionally_match_fresh_cells(
        self, gender_osn, suite
    ):
        """A prefix-reuse budget column must be distributed like an
        independently walked cell at that budget (the paper's table
        harness reads EX-* columns off one max-budget line fleet)."""
        from repro.experiments.runner import run_trials_prefix

        row = run_trials_prefix(
            gender_osn, 1, 2, suite["EX-MHRW"], "EX-MHRW",
            [SAMPLE_SIZE // 2, SAMPLE_SIZE], NUM_TRIALS, BURN_IN, seed=505,
        )
        fresh = run_trials(
            gender_osn, 1, 2, suite["EX-MHRW"], "EX-MHRW",
            sample_size=SAMPLE_SIZE // 2, repetitions=NUM_TRIALS,
            burn_in=BURN_IN, seed=606, execution="fleet",
        )
        _, p_value = stats.ks_2samp(row[0].estimates, fresh.estimates)
        assert p_value > KS_ALPHA
        _, p_calls = stats.ks_2samp(row[0].api_calls, fresh.api_calls)
        assert p_calls > KS_ALPHA
