"""Statistical regression tests for estimator unbiasedness.

Theorems 4.2/4.4 of the paper: the Hansen–Hurwitz and Horvitz–Thompson
estimators are (asymptotically) unbiased for the target-edge count.
These tests run many independent estimates on a synthetic graph whose
ground truth is known exactly and check that the empirical mean lands
inside a confidence interval around the truth.  They guard against
regressions that would silently bias either walk backend (e.g. a wrong
stationary weight, an off-by-one in the CSR offset draw, or broken
thinning).
"""

import numpy as np
import pytest

from repro.core.pipeline import estimate_target_edge_count
from repro.graph.statistics import count_target_edges

NUM_SEEDS = 80
BURN_IN = 30
SAMPLE_SIZE = 100

#: Confidence multiplier: with mean-of-80 runs the CLT applies; 4 sigma
#: keeps the deterministic-seed suite far from the rejection boundary
#: while still catching any real bias of a few percent.
SIGMAS = 4.0


def _mean_with_ci(graph, t1, t2, algorithm, backend):
    estimates = np.array(
        [
            estimate_target_edge_count(
                graph,
                t1,
                t2,
                algorithm=algorithm,
                sample_size=SAMPLE_SIZE,
                burn_in=BURN_IN,
                seed=seed,
                backend=backend,
            ).estimate
            for seed in range(NUM_SEEDS)
        ]
    )
    mean = estimates.mean()
    sem = estimates.std(ddof=1) / np.sqrt(NUM_SEEDS)
    return mean, sem


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["python", "csr"])
@pytest.mark.parametrize(
    "algorithm",
    [
        "NeighborSample-HH",
        "NeighborExploration-HH",
        "NeighborExploration-HT",
    ],
)
def test_mean_estimate_within_ci_of_truth(gender_osn, algorithm, backend):
    truth = count_target_edges(gender_osn, 1, 2)
    mean, sem = _mean_with_ci(gender_osn, 1, 2, algorithm, backend)
    margin = SIGMAS * sem + 0.02 * truth  # CI plus a small burn-in-bias allowance
    assert abs(mean - truth) < margin, (
        f"{algorithm} on backend={backend}: mean estimate {mean:.1f} is outside "
        f"±{margin:.1f} of the true count {truth} (sem {sem:.1f})"
    )


@pytest.mark.slow
def test_neighbor_sample_ht_tracks_truth(gender_osn):
    # HT thins the walk, so fewer effective samples: allow a wider margin
    # but still require the estimate to track the truth.
    truth = count_target_edges(gender_osn, 1, 2)
    mean, sem = _mean_with_ci(gender_osn, 1, 2, "NeighborSample-HT", "csr")
    assert abs(mean - truth) < 5.0 * sem + 0.05 * truth
