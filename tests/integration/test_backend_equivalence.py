"""Statistical equivalence of the CSR backend and the reference backend.

The tentpole guarantee: ``backend="csr"`` must reproduce the reference
engine's estimates *distribution for distribution*.  Two layers:

* exact layer (fast tier) — with ``exact_rng=True`` the CSR pipeline is
  bit-for-bit identical to the reference pipeline, so estimates match
  to the last ulp on a handful of seeds;
* statistical layer (slow tier) — the default fast-RNG CSR path is
  compared against the reference path over ≥ 50 independent seeds with
  a two-sample Kolmogorov–Smirnov test plus a relative-mean tolerance,
  per algorithm family.

The compiled tier rides the same two layers: ``backend="compiled"`` is
**bit-identical** to ``"csr"`` (exact layer — no tolerance, no KS), and
therefore its estimates and distinct-page ledgers must also pass the
same KS legs against the reference engine (statistical layer).  The
service leg pins that a server booted with ``backend="compiled"``
answers ``POST /estimate`` bit-identically to a ``"csr"`` twin.
"""

import asyncio
import json

import numpy as np
import pytest
from scipy import stats

import repro.walks.compiled as compiled_module
from repro.core.pipeline import estimate_target_edge_count
from repro.core.samplers import (
    NeighborExplorationSampler,
    NeighborSampleSampler,
)
from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
)
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges

#: Seeds for the statistical layer (the issue requires >= 50).
NUM_SEEDS = 60
BURN_IN = 25
SAMPLE_SIZE = 80

#: Reject equivalence only on overwhelming evidence; with 60 paired
#: runs a true distribution mismatch drives p far below this.
KS_ALPHA = 0.005


def _estimates(graph, t1, t2, algorithm, backend):
    values = []
    for seed in range(NUM_SEEDS):
        result = estimate_target_edge_count(
            graph,
            t1,
            t2,
            algorithm=algorithm,
            sample_size=SAMPLE_SIZE,
            burn_in=BURN_IN,
            seed=seed,
            backend=backend,
        )
        values.append(result.estimate)
    return np.asarray(values)


class TestExactLayer:
    """exact_rng=True: the CSR pipeline is the reference pipeline."""

    def test_neighbor_sample_estimates_identical(self, gender_osn):
        for seed in (0, 1, 2):
            api_ref = RestrictedGraphAPI(gender_osn)
            ref_samples = NeighborSampleSampler(
                api_ref, 1, 2, burn_in=BURN_IN, rng=seed
            ).sample(SAMPLE_SIZE)
            api_csr = RestrictedGraphAPI(gender_osn)
            csr_samples = NeighborSampleSampler(
                api_csr, 1, 2, burn_in=BURN_IN, rng=seed, backend="csr", exact_rng=True
            ).sample(SAMPLE_SIZE)
            ref = EdgeHansenHurwitzEstimator().estimate(ref_samples)
            fast = EdgeHansenHurwitzEstimator().estimate(csr_samples)
            assert fast.estimate == ref.estimate
            assert fast.api_calls == ref.api_calls

    def test_neighbor_exploration_estimates_identical(self, gender_osn):
        for seed in (0, 1, 2):
            api_ref = RestrictedGraphAPI(gender_osn)
            ref_samples = NeighborExplorationSampler(
                api_ref, 1, 2, burn_in=BURN_IN, rng=seed
            ).sample(SAMPLE_SIZE)
            api_csr = RestrictedGraphAPI(gender_osn)
            csr_samples = NeighborExplorationSampler(
                api_csr, 1, 2, burn_in=BURN_IN, rng=seed, backend="csr", exact_rng=True
            ).sample(SAMPLE_SIZE)
            ref = NodeHansenHurwitzEstimator().estimate(ref_samples)
            fast = NodeHansenHurwitzEstimator().estimate(csr_samples)
            assert fast.estimate == ref.estimate
            assert fast.api_calls == ref.api_calls


@pytest.mark.slow
class TestStatisticalLayer:
    """Default fast-RNG CSR path vs reference path over >= 50 seeds."""

    @pytest.mark.parametrize(
        "algorithm",
        [
            "NeighborSample-HH",
            "NeighborSample-HT",
            "NeighborExploration-HH",
            "NeighborExploration-HT",
        ],
    )
    def test_estimate_distributions_match(self, gender_osn, algorithm):
        python_estimates = _estimates(gender_osn, 1, 2, algorithm, "python")
        csr_estimates = _estimates(gender_osn, 1, 2, algorithm, "csr")

        statistic, p_value = stats.ks_2samp(python_estimates, csr_estimates)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "CSR estimates are not distributed like reference estimates"
        )

        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(python_estimates.mean() - csr_estimates.mean())
        assert mean_gap < 0.15 * truth, (
            f"{algorithm}: backend means differ by {mean_gap:.1f} "
            f"({100 * mean_gap / truth:.1f}% of the true count {truth})"
        )

    def test_rare_label_exploration_distributions_match(self, rare_label_osn):
        labels = sorted(rare_label_osn.all_labels())
        t1, t2 = labels[0], labels[1]
        python_estimates = _estimates(
            rare_label_osn, t1, t2, "NeighborExploration-HH", "python"
        )
        csr_estimates = _estimates(
            rare_label_osn, t1, t2, "NeighborExploration-HH", "csr"
        )
        _, p_value = stats.ks_2samp(python_estimates, csr_estimates)
        assert p_value > KS_ALPHA


# ----------------------------------------------------------------------
# compiled tier
# ----------------------------------------------------------------------
@pytest.fixture
def force_compiled(monkeypatch):
    """Dispatch ``backend="compiled"`` to the compiled kernels even when
    numba is absent (they run un-jitted; same code, same bits)."""
    monkeypatch.setattr(compiled_module, "_NUMBA_AVAILABLE", True)


def _reference_runs(graph, t1, t2, algorithm):
    """Reference-engine estimates *and* charged-call ledgers per seed."""
    estimates, calls = [], []
    for seed in range(NUM_SEEDS):
        result = estimate_target_edge_count(
            graph, t1, t2, algorithm=algorithm, sample_size=SAMPLE_SIZE,
            burn_in=BURN_IN, seed=seed, backend="python",
        )
        estimates.append(result.estimate)
        calls.append(result.api_calls)
    return np.asarray(estimates), np.asarray(calls, dtype=np.float64)


def _compiled_fleet_runs(graph, t1, t2, algorithm):
    """One compiled fleet whose walkers are NUM_SEEDS independent trials."""
    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import run_trials

    suite = build_algorithm_suite(graph)
    outcome = run_trials(
        graph, t1, t2, suite[algorithm], algorithm,
        sample_size=SAMPLE_SIZE, repetitions=NUM_SEEDS, burn_in=BURN_IN,
        seed=1234, backend="compiled", execution="fleet",
    )
    return (
        np.asarray(outcome.estimates),
        np.asarray(outcome.api_calls, dtype=np.float64),
    )


@pytest.mark.usefixtures("force_compiled")
class TestCompiledExactLayer:
    """backend="compiled" == backend="csr", bit for bit (fast tier)."""

    @pytest.mark.parametrize(
        "algorithm", ["NeighborSample-HH", "NeighborExploration-HT", "EX-RCMH"]
    )
    def test_fleet_outcomes_identical_to_csr(self, gender_osn, algorithm):
        from repro.experiments.algorithms import build_algorithm_suite
        from repro.experiments.runner import run_trials

        suite = build_algorithm_suite(gender_osn)
        outcomes = {}
        for backend in ("csr", "compiled"):
            outcomes[backend] = run_trials(
                gender_osn, 1, 2, suite[algorithm], algorithm,
                sample_size=SAMPLE_SIZE, repetitions=8, burn_in=BURN_IN,
                seed=5, backend=backend, execution="fleet",
            )
        assert outcomes["compiled"].estimates == outcomes["csr"].estimates
        assert outcomes["compiled"].api_calls == outcomes["csr"].api_calls


@pytest.mark.slow
@pytest.mark.usefixtures("force_compiled")
class TestCompiledStatisticalLayer:
    """Compiled fleets vs the reference engine over >= 50 seeds."""

    @pytest.mark.parametrize(
        "algorithm", ["NeighborSample-HH", "NeighborExploration-HH"]
    )
    def test_estimates_and_ledgers_distributed_like_reference(
        self, gender_osn, algorithm
    ):
        ref_estimates, ref_calls = _reference_runs(gender_osn, 1, 2, algorithm)
        cmp_estimates, cmp_calls = _compiled_fleet_runs(
            gender_osn, 1, 2, algorithm
        )

        statistic, p_value = stats.ks_2samp(ref_estimates, cmp_estimates)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "compiled-fleet estimates are not distributed like reference "
            "estimates"
        )
        statistic, p_value = stats.ks_2samp(ref_calls, cmp_calls)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "compiled-fleet distinct-page ledgers are not distributed like "
            "the reference charged-call counts"
        )

        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(ref_estimates.mean() - cmp_estimates.mean())
        assert mean_gap < 0.15 * truth, (
            f"{algorithm}: backend means differ by {mean_gap:.1f} "
            f"({100 * mean_gap / truth:.1f}% of the true count {truth})"
        )

    def test_baseline_line_fleet_ledgers_distributed_like_reference(
        self, gender_osn
    ):
        """EX-MHRW: compiled line fleets, probes included in the ledgers."""
        from repro.experiments.algorithms import build_algorithm_suite
        from repro.experiments.runner import run_trials

        suite = build_algorithm_suite(gender_osn)
        sequential = run_trials(
            gender_osn, 1, 2, suite["EX-MHRW"], "EX-MHRW",
            sample_size=SAMPLE_SIZE, repetitions=NUM_SEEDS, burn_in=BURN_IN,
            seed=77, execution="sequential",
        )
        cmp_estimates, cmp_calls = _compiled_fleet_runs(
            gender_osn, 1, 2, "EX-MHRW"
        )
        _, p_value = stats.ks_2samp(np.asarray(sequential.estimates), cmp_estimates)
        assert p_value > KS_ALPHA
        _, p_value = stats.ks_2samp(
            np.asarray(sequential.api_calls, dtype=np.float64), cmp_calls
        )
        assert p_value > KS_ALPHA


class TestCompiledServiceBitIdentity:
    """POST /estimate answers are backend-agnostic, over real HTTP."""

    @staticmethod
    def _serving_graph():
        from repro.datasets.labeling import assign_binary_labels
        from repro.datasets.synthetic import powerlaw_cluster_osn

        graph = powerlaw_cluster_osn(250, 5, 0.3, rng=7)
        assign_binary_labels(graph, 0.5, labels=(1, 2), rng=8)
        return graph

    @staticmethod
    async def _post_estimate(port, payload):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST /estimate HTTP/1.1\r\nHost: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        return int(header_blob.split()[1]), json.loads(body_blob.decode("utf-8"))

    def test_post_estimate_identical_across_backends(self, force_compiled):
        from repro.service import EstimationService, ServiceHTTPServer

        payload = dict(
            algorithm="NeighborSample-HH", t1=1, t2=2, budget=25,
            seed=7, repetitions=6, burn_in=5,
        )

        async def serve_once(service):
            server = ServiceHTTPServer(service, port=0, window_seconds=0.005)
            await server.start()
            try:
                return await self._post_estimate(server.port, payload)
            finally:
                await server.stop()

        answers = {}
        for backend in ("csr", "compiled"):
            with EstimationService(
                self._serving_graph(), graph_store="ram", backend=backend,
                default_burn_in=5, name=f"equiv-{backend}",
            ) as service:
                status, body = asyncio.run(serve_once(service))
            assert status == 200
            answers[backend] = body

        assert (
            answers["compiled"]["estimates"] == answers["csr"]["estimates"]
        )
        assert (
            answers["compiled"]["api_calls"] == answers["csr"]["api_calls"]
        )
        assert answers["compiled"]["cached"] is False
