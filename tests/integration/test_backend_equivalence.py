"""Statistical equivalence of the CSR backend and the reference backend.

The tentpole guarantee: ``backend="csr"`` must reproduce the reference
engine's estimates *distribution for distribution*.  Two layers:

* exact layer (fast tier) — with ``exact_rng=True`` the CSR pipeline is
  bit-for-bit identical to the reference pipeline, so estimates match
  to the last ulp on a handful of seeds;
* statistical layer (slow tier) — the default fast-RNG CSR path is
  compared against the reference path over ≥ 50 independent seeds with
  a two-sample Kolmogorov–Smirnov test plus a relative-mean tolerance,
  per algorithm family.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.pipeline import estimate_target_edge_count
from repro.core.samplers import (
    NeighborExplorationSampler,
    NeighborSampleSampler,
)
from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
)
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges

#: Seeds for the statistical layer (the issue requires >= 50).
NUM_SEEDS = 60
BURN_IN = 25
SAMPLE_SIZE = 80

#: Reject equivalence only on overwhelming evidence; with 60 paired
#: runs a true distribution mismatch drives p far below this.
KS_ALPHA = 0.005


def _estimates(graph, t1, t2, algorithm, backend):
    values = []
    for seed in range(NUM_SEEDS):
        result = estimate_target_edge_count(
            graph,
            t1,
            t2,
            algorithm=algorithm,
            sample_size=SAMPLE_SIZE,
            burn_in=BURN_IN,
            seed=seed,
            backend=backend,
        )
        values.append(result.estimate)
    return np.asarray(values)


class TestExactLayer:
    """exact_rng=True: the CSR pipeline is the reference pipeline."""

    def test_neighbor_sample_estimates_identical(self, gender_osn):
        for seed in (0, 1, 2):
            api_ref = RestrictedGraphAPI(gender_osn)
            ref_samples = NeighborSampleSampler(
                api_ref, 1, 2, burn_in=BURN_IN, rng=seed
            ).sample(SAMPLE_SIZE)
            api_csr = RestrictedGraphAPI(gender_osn)
            csr_samples = NeighborSampleSampler(
                api_csr, 1, 2, burn_in=BURN_IN, rng=seed, backend="csr", exact_rng=True
            ).sample(SAMPLE_SIZE)
            ref = EdgeHansenHurwitzEstimator().estimate(ref_samples)
            fast = EdgeHansenHurwitzEstimator().estimate(csr_samples)
            assert fast.estimate == ref.estimate
            assert fast.api_calls == ref.api_calls

    def test_neighbor_exploration_estimates_identical(self, gender_osn):
        for seed in (0, 1, 2):
            api_ref = RestrictedGraphAPI(gender_osn)
            ref_samples = NeighborExplorationSampler(
                api_ref, 1, 2, burn_in=BURN_IN, rng=seed
            ).sample(SAMPLE_SIZE)
            api_csr = RestrictedGraphAPI(gender_osn)
            csr_samples = NeighborExplorationSampler(
                api_csr, 1, 2, burn_in=BURN_IN, rng=seed, backend="csr", exact_rng=True
            ).sample(SAMPLE_SIZE)
            ref = NodeHansenHurwitzEstimator().estimate(ref_samples)
            fast = NodeHansenHurwitzEstimator().estimate(csr_samples)
            assert fast.estimate == ref.estimate
            assert fast.api_calls == ref.api_calls


@pytest.mark.slow
class TestStatisticalLayer:
    """Default fast-RNG CSR path vs reference path over >= 50 seeds."""

    @pytest.mark.parametrize(
        "algorithm",
        [
            "NeighborSample-HH",
            "NeighborSample-HT",
            "NeighborExploration-HH",
            "NeighborExploration-HT",
        ],
    )
    def test_estimate_distributions_match(self, gender_osn, algorithm):
        python_estimates = _estimates(gender_osn, 1, 2, algorithm, "python")
        csr_estimates = _estimates(gender_osn, 1, 2, algorithm, "csr")

        statistic, p_value = stats.ks_2samp(python_estimates, csr_estimates)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "CSR estimates are not distributed like reference estimates"
        )

        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(python_estimates.mean() - csr_estimates.mean())
        assert mean_gap < 0.15 * truth, (
            f"{algorithm}: backend means differ by {mean_gap:.1f} "
            f"({100 * mean_gap / truth:.1f}% of the true count {truth})"
        )

    def test_rare_label_exploration_distributions_match(self, rare_label_osn):
        labels = sorted(rare_label_osn.all_labels())
        t1, t2 = labels[0], labels[1]
        python_estimates = _estimates(
            rare_label_osn, t1, t2, "NeighborExploration-HH", "python"
        )
        csr_estimates = _estimates(
            rare_label_osn, t1, t2, "NeighborExploration-HH", "csr"
        )
        _, p_value = stats.ks_2samp(python_estimates, csr_estimates)
        assert p_value > KS_ALPHA
