"""Statistical equivalence of prefix-reuse sweeps and fresh-walk sweeps.

``reuse="prefix"`` changes *which* walks serve a sweep cell (prefixes
of one max-budget fleet instead of independently re-walked fleets) but
must not change the per-cell estimate law: a budget-``b`` prefix of a
stationary walk is distributed exactly like a budget-``b`` walk.  The
slow tier verifies this with two-sample Kolmogorov–Smirnov tests per
algorithm and budget, plus an NRMSE sanity band, mirroring the fleet
equivalence suite.
"""

import numpy as np
import pytest
from scipy import stats

from repro.experiments.algorithms import PAPER_ALGORITHM_ORDER, build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.experiments.sweeps import frequency_sweep
from repro.graph.statistics import count_target_edges

NUM_TRIALS = 60
BURN_IN = 25
FRACTIONS = (0.02, 0.05)

#: Reject equivalence only on overwhelming evidence (as in the fleet suite).
KS_ALPHA = 0.005


@pytest.mark.slow
class TestPrefixTableEquivalence:
    @pytest.fixture(scope="class")
    def suite(self, gender_osn):
        return build_algorithm_suite(gender_osn, include_baselines=False)

    @pytest.fixture(scope="class")
    def tables(self, gender_osn, suite):
        fresh = compare_algorithms(
            gender_osn, 1, 2, FRACTIONS, NUM_TRIALS,
            algorithms=suite, burn_in=BURN_IN, seed=11,
            execution="fleet", reuse="none",
        )
        prefix = compare_algorithms(
            gender_osn, 1, 2, FRACTIONS, NUM_TRIALS,
            algorithms=suite, burn_in=BURN_IN, seed=22, reuse="prefix",
        )
        return fresh, prefix

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHM_ORDER)
    @pytest.mark.parametrize("column", range(len(FRACTIONS)))
    def test_estimate_distributions_match(self, gender_osn, tables, algorithm, column):
        fresh, prefix = tables
        fresh_estimates = np.asarray(fresh.cells[algorithm][column].estimates)
        prefix_estimates = np.asarray(prefix.cells[algorithm][column].estimates)
        statistic, p_value = stats.ks_2samp(fresh_estimates, prefix_estimates)
        assert p_value > KS_ALPHA, (
            f"{algorithm} column {column}: KS statistic {statistic:.3f} "
            f"(p={p_value:.4f}) — prefix estimates are not distributed like "
            "fresh-walk estimates"
        )
        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(fresh_estimates.mean() - prefix_estimates.mean())
        assert mean_gap < 0.2 * truth

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHM_ORDER)
    def test_ledger_distributions_match(self, tables, algorithm):
        fresh, prefix = tables
        fresh_calls = np.asarray(fresh.cells[algorithm][0].api_calls)
        prefix_calls = np.asarray(prefix.cells[algorithm][0].api_calls)
        _, p_value = stats.ks_2samp(fresh_calls, prefix_calls)
        assert p_value > KS_ALPHA


@pytest.mark.slow
class TestPrefixFrequencySweepEquivalence:
    def test_per_point_estimates_match(self, rare_label_osn):
        from repro.datasets.registry import select_target_pairs

        pairs = select_target_pairs(rare_label_osn, count=3)
        fresh = frequency_sweep(
            rare_label_osn, pairs, budget_fraction=0.05, repetitions=NUM_TRIALS,
            burn_in=BURN_IN, seed=33, execution="fleet", reuse="none",
        )
        prefix = frequency_sweep(
            rare_label_osn, pairs, budget_fraction=0.05, repetitions=NUM_TRIALS,
            burn_in=BURN_IN, seed=44, reuse="prefix",
        )
        assert [point.target_pair for point in fresh] == [
            point.target_pair for point in prefix
        ]
        for fresh_point, prefix_point in zip(fresh, prefix):
            for algorithm in ("NeighborSample-HH", "NeighborExploration-HH"):
                gap = abs(
                    fresh_point.nrmse_by_algorithm[algorithm]
                    - prefix_point.nrmse_by_algorithm[algorithm]
                )
                # NRMSE is a ratio statistic over 60 trials; allow the
                # Monte-Carlo band either estimate carries itself.
                scale = max(
                    fresh_point.nrmse_by_algorithm[algorithm],
                    prefix_point.nrmse_by_algorithm[algorithm],
                    0.05,
                )
                assert gap <= 0.75 * scale, (
                    f"{algorithm} at pair {fresh_point.target_pair}: NRMSE "
                    f"{fresh_point.nrmse_by_algorithm[algorithm]:.3f} (fresh) vs "
                    f"{prefix_point.nrmse_by_algorithm[algorithm]:.3f} (prefix)"
                )
