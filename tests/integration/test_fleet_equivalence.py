"""Statistical equivalence of fleet execution and sequential execution.

``run_trials(..., execution="fleet")`` consumes random bits
walker-by-step instead of trial-by-trial, so its estimates cannot be
bit-identical to the sequential path — the guarantee is distributional:
for every proposed algorithm, the fleet's per-trial estimates must be
drawn from the same law as sequential per-trial estimates.

Two layers:

* exact layer (fast tier) — the per-trial ledgers and the sequential
  fallback are deterministic properties checked on a handful of seeds
  (see also ``tests/unit/test_fleet.py`` for the replay parity);
* statistical layer (slow tier) — a two-sample Kolmogorov–Smirnov test
  over ≥ 60 independent trials per algorithm, fleet vs sequential CSR,
  plus a relative-mean tolerance, for all five proposed algorithms.
"""

import numpy as np
import pytest
from scipy import stats

from repro.experiments.algorithms import PAPER_ALGORITHM_ORDER, build_algorithm_suite
from repro.experiments.runner import run_trials
from repro.graph.statistics import count_target_edges

#: Trials per side (the issue requires >= 60 seeds per algorithm).
NUM_TRIALS = 60
BURN_IN = 25
SAMPLE_SIZE = 80

#: Reject equivalence only on overwhelming evidence; with 60 paired
#: runs a true distribution mismatch drives p far below this.
KS_ALPHA = 0.005


def _outcome(graph, t1, t2, suite, algorithm, execution, seed):
    return run_trials(
        graph,
        t1,
        t2,
        suite[algorithm],
        algorithm,
        sample_size=SAMPLE_SIZE,
        repetitions=NUM_TRIALS,
        burn_in=BURN_IN,
        seed=seed,
        backend="csr",
        execution=execution,
    )


@pytest.mark.slow
class TestFleetStatisticalLayer:
    """Fleet estimates vs sequential CSR estimates over >= 60 trials."""

    @pytest.fixture(scope="class")
    def suite(self, gender_osn):
        return build_algorithm_suite(gender_osn, include_baselines=False)

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHM_ORDER)
    def test_estimate_distributions_match(self, gender_osn, suite, algorithm):
        sequential = np.asarray(
            _outcome(gender_osn, 1, 2, suite, algorithm, "sequential", seed=11).estimates
        )
        fleet = np.asarray(
            _outcome(gender_osn, 1, 2, suite, algorithm, "fleet", seed=22).estimates
        )

        statistic, p_value = stats.ks_2samp(sequential, fleet)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: KS statistic {statistic:.3f} (p={p_value:.4f}) — "
            "fleet estimates are not distributed like sequential estimates"
        )

        truth = count_target_edges(gender_osn, 1, 2)
        mean_gap = abs(sequential.mean() - fleet.mean())
        assert mean_gap < 0.15 * truth, (
            f"{algorithm}: execution means differ by {mean_gap:.1f} "
            f"({100 * mean_gap / truth:.1f}% of the true count {truth})"
        )

    @pytest.mark.parametrize("algorithm", ["NeighborExploration-HH", "NeighborSample-HH"])
    def test_charged_calls_distributions_match(self, gender_osn, suite, algorithm):
        """The budget ledgers must agree in distribution, not just the
        estimates: a fleet crawler downloads the same number of distinct
        pages a sequential crawler with the same budget would."""
        sequential = np.asarray(
            _outcome(gender_osn, 1, 2, suite, algorithm, "sequential", seed=33).api_calls
        )
        fleet = np.asarray(
            _outcome(gender_osn, 1, 2, suite, algorithm, "fleet", seed=44).api_calls
        )
        statistic, p_value = stats.ks_2samp(sequential, fleet)
        assert p_value > KS_ALPHA, (
            f"{algorithm}: charged-call KS statistic {statistic:.3f} "
            f"(p={p_value:.4f})"
        )

    def test_rare_label_exploration_distributions_match(self, rare_label_osn):
        labels = sorted(rare_label_osn.all_labels())
        t1, t2 = labels[0], labels[1]
        suite = build_algorithm_suite(rare_label_osn, include_baselines=False)
        sequential = np.asarray(
            _outcome(
                rare_label_osn, t1, t2, suite, "NeighborExploration-HH", "sequential", 55
            ).estimates
        )
        fleet = np.asarray(
            _outcome(
                rare_label_osn, t1, t2, suite, "NeighborExploration-HH", "fleet", 66
            ).estimates
        )
        _, p_value = stats.ks_2samp(sequential, fleet)
        assert p_value > KS_ALPHA
