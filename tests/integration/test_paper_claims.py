"""Integration tests for the paper's qualitative claims.

Each test encodes one of the findings listed in §5.2 / §5.3 of the paper
and checks that the reproduction exhibits it (at reduced scale and
repetition count, with tolerances that allow for the extra noise).
"""

import pytest

from repro.datasets.registry import load_dataset
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.experiments.sweeps import frequency_sweep
from repro.graph.statistics import count_target_edges


@pytest.fixture(scope="module")
def rare_dataset():
    return load_dataset("pokec", seed=5, scale=0.15)


@pytest.fixture(scope="module")
def abundant_dataset():
    return load_dataset("facebook", seed=5, scale=0.15)


class TestProposedBeatBaselines:
    """Finding (1) of §5.2: the best algorithm is always a proposed one."""

    def test_on_abundant_labels(self, abundant_dataset):
        graph = abundant_dataset.graph
        table = compare_algorithms(
            graph,
            1,
            2,
            sample_fractions=[0.05],
            repetitions=8,
            algorithms=build_algorithm_suite(graph),
            burn_in=50,
            seed=31,
        )
        best, _ = table.best_algorithm()
        assert not best.startswith("EX-")

    def test_on_rare_labels(self, rare_dataset):
        graph = rare_dataset.graph
        t1, t2 = rare_dataset.target_pairs[0]
        table = compare_algorithms(
            graph,
            t1,
            t2,
            sample_fractions=[0.05],
            repetitions=8,
            algorithms=build_algorithm_suite(graph),
            burn_in=50,
            seed=32,
        )
        best, _ = table.best_algorithm()
        assert not best.startswith("EX-")


class TestNRMSEDecreasesWithBudget:
    """Finding (3) of §5.2: more API calls -> lower error."""

    def test_proposed_algorithms(self, abundant_dataset):
        graph = abundant_dataset.graph
        suite = build_algorithm_suite(graph, include_baselines=False)
        table = compare_algorithms(
            graph,
            1,
            2,
            sample_fractions=[0.01, 0.08],
            repetitions=10,
            algorithms=suite,
            burn_in=50,
            seed=33,
        )
        for name in suite:
            row = table.nrmse_row(name)
            assert row[-1] < row[0] * 1.5  # allow noise, but no blow-up
        # And on average across algorithms the improvement must be clear.
        first = sum(table.nrmse_row(name)[0] for name in suite)
        last = sum(table.nrmse_row(name)[-1] for name in suite)
        assert last < first


class TestExplorationWinsOnRareLabels:
    """Finding (4) of §5.2 / §5.3: NeighborExploration dominates for rare labels."""

    def test_rarest_pair(self, rare_dataset):
        graph = rare_dataset.graph
        t1, t2 = rare_dataset.target_pairs[0]
        assert count_target_edges(graph, t1, t2) / graph.num_edges < 0.05
        suite = build_algorithm_suite(graph, include_baselines=False)
        table = compare_algorithms(
            graph,
            t1,
            t2,
            sample_fractions=[0.05],
            repetitions=10,
            algorithms=suite,
            burn_in=50,
            seed=34,
        )
        exploration_best = min(
            table.nrmse_row(name)[0]
            for name in suite
            if name.startswith("NeighborExploration")
        )
        sample_best = min(
            table.nrmse_row(name)[0] for name in suite if name.startswith("NeighborSample")
        )
        assert exploration_best < sample_best


class TestErrorDecreasesWithFrequency:
    """Figures 1-2: NRMSE shrinks as the relative target-edge count grows."""

    def test_frequency_trend(self, rare_dataset):
        graph = rare_dataset.graph
        pairs = rare_dataset.target_pairs
        points = frequency_sweep(
            graph,
            pairs,
            budget_fraction=0.05,
            repetitions=8,
            burn_in=50,
            seed=35,
        )
        assert len(points) >= 3
        # Compare the rarest and the most frequent pair for the NE-HH algorithm.
        series = [
            (point.relative_count, point.nrmse_by_algorithm["NeighborExploration-HH"])
            for point in points
        ]
        assert series[-1][1] < series[0][1]
