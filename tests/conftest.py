"""Shared fixtures for the test suite.

The fixtures provide a spectrum of graphs:

* tiny hand-built graphs with exactly known target-edge counts (for
  exact assertions),
* a mid-sized synthetic OSN with gender labels (for statistical
  assertions about the estimators),
* a rare-label OSN (for the NeighborExploration-vs-NeighborSample
  comparisons).
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    """Register the marker splitting statistical tests from the fast tier.

    Run the fast tier with ``pytest -m "not slow"``, the statistical
    tier with ``pytest -m slow`` (see ``scripts/run_tests.sh``); a plain
    ``pytest`` run executes both.
    """
    config.addinivalue_line(
        "markers",
        "slow: statistical / multi-seed tests, excluded from the fast tier",
    )
    config.addinivalue_line(
        "markers",
        "requires_numba: exercises the real numba JIT; skipped when numba "
        "is not installed (the compiled-engine *semantics* are still "
        "covered — the differential suite runs the kernels un-jitted)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_numba`` tests on the no-numba CI leg.

    Only tests that need the actual JIT (dispatcher objects, compile
    caches, speedups) carry the marker; bit-parity tests run everywhere
    because the un-jitted kernels are the same Python code numba
    compiles.
    """
    from repro.walks.compiled import numba_available

    if numba_available():
        return
    skip_numba = pytest.mark.skip(reason="numba is not installed")
    for item in items:
        if "requires_numba" in item.keywords:
            item.add_marker(skip_numba)


from repro.datasets.labeling import assign_binary_labels, assign_zipf_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def triangle_graph() -> LabeledGraph:
    """Three nodes, three edges; node 1 and 2 are 'a', node 3 is 'b'.

    Target edges for ('a', 'b'): (1,3) and (2,3) -> F = 2.
    """
    graph = LabeledGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(1, 3)
    graph.set_labels(1, ["a"])
    graph.set_labels(2, ["a"])
    graph.set_labels(3, ["b"])
    return graph


@pytest.fixture
def path_graph() -> LabeledGraph:
    """Path 1-2-3-4 with alternating labels; F(('x','y')) = 3."""
    graph = LabeledGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 4)
    graph.set_labels(1, ["x"])
    graph.set_labels(2, ["y"])
    graph.set_labels(3, ["x"])
    graph.set_labels(4, ["y"])
    return graph


@pytest.fixture
def star_graph() -> LabeledGraph:
    """Star with center 0 ('hub') and 5 leaves ('leaf'); F = 5."""
    graph = LabeledGraph()
    for leaf in range(1, 6):
        graph.add_edge(0, leaf)
        graph.set_labels(leaf, ["leaf"])
    graph.set_labels(0, ["hub"])
    return graph


@pytest.fixture(scope="session")
def gender_osn() -> LabeledGraph:
    """A 600-node power-law OSN with balanced binary gender labels."""
    graph = powerlaw_cluster_osn(600, 6, 0.3, rng=11)
    assign_binary_labels(graph, 0.5, labels=(1, 2), rng=12)
    return graph


@pytest.fixture(scope="session")
def rare_label_osn() -> LabeledGraph:
    """A 900-node power-law OSN with Zipf location labels (rare target pairs)."""
    graph = powerlaw_cluster_osn(900, 8, 0.3, rng=21)
    assign_zipf_labels(graph, num_labels=40, exponent=1.0, rng=22)
    return graph


@pytest.fixture
def gender_api(gender_osn) -> RestrictedGraphAPI:
    """Restricted API over the gender OSN (fresh counter per test)."""
    return RestrictedGraphAPI(gender_osn)
